package ann

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"datasculpt/internal/textproc"
)

// clusteredCorpus synthesizes hashed-TF-IDF-like sparse vectors with
// planted clusters: members of a cluster share most of their non-zeros
// (high cosine), plus per-document noise — the regime KATE retrieval
// actually operates in, where a query's true neighbours share keywords
// with it.
func clusteredCorpus(rng *rand.Rand, dim, clusters, perCluster, shared, noise int) []*textproc.SparseVector {
	centers := make([][]int32, clusters)
	for c := range centers {
		seen := map[int32]bool{}
		for len(seen) < shared {
			seen[int32(rng.Intn(dim))] = true
		}
		for f := range seen {
			centers[c] = append(centers[c], f)
		}
		sort.Slice(centers[c], func(i, j int) bool { return centers[c][i] < centers[c][j] })
	}
	var out []*textproc.SparseVector
	for c := 0; c < clusters; c++ {
		for d := 0; d < perCluster; d++ {
			m := map[int32]float32{}
			for _, f := range centers[c] {
				if rng.Float64() < 0.8 { // drop a few shared terms per doc
					m[f] = 0.5 + rng.Float32()
				}
			}
			for k := 0; k < noise; k++ {
				m[int32(rng.Intn(dim))] = 0.2 + 0.6*rng.Float32()
			}
			v := &textproc.SparseVector{}
			for f := range m {
				v.Idx = append(v.Idx, f)
			}
			sort.Slice(v.Idx, func(i, j int) bool { return v.Idx[i] < v.Idx[j] })
			for _, f := range v.Idx {
				v.Val = append(v.Val, m[f])
			}
			v.Normalize()
			out = append(out, v)
		}
	}
	return out
}

// exactTopK returns the ids of the k most cosine-similar corpus vectors
// to q (similarity descending, id ascending on ties) — the ground truth
// the shortlist is judged against.
func exactTopK(corpus []*textproc.SparseVector, q *textproc.SparseVector, k int) []int32 {
	type scored struct {
		id  int32
		sim float64
	}
	all := make([]scored, len(corpus))
	for i, v := range corpus {
		all[i] = scored{int32(i), q.Cosine(v)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].sim != all[b].sim {
			return all[a].sim > all[b].sim
		}
		return all[a].id < all[b].id
	})
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// TestRecallProperty is the tentpole's acceptance property: across seeded
// random clustered corpora, the LSH shortlist (at the default candidate
// multiplier) must contain at least 90% of the exact top-k — which, with
// exact re-ranking, is recall@k of the full retrieval stack.
func TestRecallProperty(t *testing.T) {
	const (
		dim  = 2048
		k    = 10
		mult = 16
	)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		corpus := clusteredCorpus(rng, dim, 40, 50, 12, 6) // 2000 docs
		ix := New(Config{Dim: dim, Seed: seed})
		ix.Add(corpus)

		hits, want := 0, 0
		for qi := 0; qi < 40; qi++ {
			q := corpus[rng.Intn(len(corpus))]
			truth := exactTopK(corpus, q, k)
			short := ix.Candidates(q, mult*k)
			in := make(map[int32]bool, len(short))
			for _, id := range short {
				in[id] = true
			}
			for _, id := range truth {
				want++
				if in[id] {
					hits++
				}
			}
		}
		recall := float64(hits) / float64(want)
		t.Logf("seed %d: recall@%d = %.3f", seed, k, recall)
		if recall < 0.9 {
			t.Errorf("seed %d: recall@%d = %.3f, want >= 0.9", seed, k, recall)
		}
	}
}

// TestDeterminismAcrossWorkers: the same seed must yield identical
// shortlists whether the index was sketched sequentially or with
// GOMAXPROCS workers, and across chunked vs one-shot Add.
func TestDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpus := clusteredCorpus(rng, 1024, 20, 40, 10, 5)
	queries := corpus[:25]

	build := func(workers, chunk int) *Index {
		ix := New(Config{Dim: 1024, Seed: 42, Workers: workers})
		for lo := 0; lo < len(corpus); lo += chunk {
			hi := lo + chunk
			if hi > len(corpus) {
				hi = len(corpus)
			}
			ix.Add(corpus[lo:hi])
		}
		return ix
	}
	seq := build(1, len(corpus))
	parl := build(runtime.GOMAXPROCS(0), 97)

	for qi, q := range queries {
		a := seq.Candidates(q, 64)
		b := parl.Candidates(q, 64)
		if len(a) != len(b) {
			t.Fatalf("query %d: shortlist sizes differ: %d vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: shortlists diverge at %d: %d vs %d", qi, i, a[i], b[i])
			}
		}
	}
}

// TestSketchDeterminism: sketches are a pure function of (seed, vector).
func TestSketchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	corpus := clusteredCorpus(rng, 512, 5, 10, 8, 4)
	a := New(Config{Dim: 512, Seed: 9})
	b := New(Config{Dim: 512, Seed: 9})
	for _, v := range corpus {
		sa := a.Sketch(v, nil)
		sb := b.Sketch(v, nil)
		for w := range sa {
			if sa[w] != sb[w] {
				t.Fatalf("sketches differ for identical seeds")
			}
		}
	}
	c := New(Config{Dim: 512, Seed: 10})
	diff := false
	for _, v := range corpus {
		sa := a.Sketch(v, nil)
		sc := c.Sketch(v, nil)
		for w := range sa {
			if sa[w] != sc[w] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical sketch streams")
	}
}

// TestCandidatesSmallIndex: a target covering the whole index returns
// every id, ascending.
func TestCandidatesSmallIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	corpus := clusteredCorpus(rng, 256, 3, 5, 6, 3)
	ix := New(Config{Dim: 256, Seed: 1})
	ix.Add(corpus)
	got := ix.Candidates(corpus[0], len(corpus)+5)
	if len(got) != len(corpus) {
		t.Fatalf("got %d candidates, want %d", len(got), len(corpus))
	}
	for i, id := range got {
		if id != int32(i) {
			t.Fatalf("candidate %d = %d, want %d", i, id, i)
		}
	}
}

// TestCandidatesAscendingAndUnique: shortlists are strictly ascending
// (dedup across tables and the Hamming top-up).
func TestCandidatesAscendingAndUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	corpus := clusteredCorpus(rng, 1024, 30, 30, 10, 5)
	ix := New(Config{Dim: 1024, Seed: 5})
	ix.Add(corpus)
	for qi := 0; qi < 20; qi++ {
		got := ix.Candidates(corpus[rng.Intn(len(corpus))], 50)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("query %d: candidates not strictly ascending at %d: %v <= %v",
					qi, i, got[i], got[i-1])
			}
		}
		if len(got) < 50 {
			t.Fatalf("query %d: got %d candidates, want >= 50", qi, len(got))
		}
	}
}

// TestEmptyQueryVector: a zero vector sketches to all-zero bits and must
// still return a full shortlist without panicking.
func TestEmptyQueryVector(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	corpus := clusteredCorpus(rng, 512, 10, 20, 8, 4)
	ix := New(Config{Dim: 512, Seed: 2})
	ix.Add(corpus)
	got := ix.Candidates(&textproc.SparseVector{}, 30)
	if len(got) < 30 {
		t.Fatalf("zero query: got %d candidates, want >= 30", len(got))
	}
}

func BenchmarkSketch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	corpus := clusteredCorpus(rng, 8192, 10, 10, 20, 20)
	ix := New(Config{Dim: 8192, Seed: 1})
	dst := make([]uint64, ix.words)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Sketch(corpus[i%len(corpus)], dst)
	}
}
