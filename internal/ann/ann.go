// Package ann provides approximate nearest-neighbour retrieval over the
// hashed TF-IDF sparse vectors the rest of the pipeline already produces,
// so KATE demonstration retrieval stays cheap when the example pool grows
// to hundreds of thousands of documents.
//
// The index is a signed-random-projection (SimHash) LSH: every vector is
// sketched into Tables×Bits sign bits against a matrix of seeded ±1
// hyperplanes, and the sketch is banded into Tables bucket keys of Bits
// bits each. A query gathers the documents sharing at least one band
// bucket with it — the classic multi-table banding shortlist, sublinear
// on clustered corpora — and, whenever the buckets alone cannot fill the
// requested shortlist, tops it up with the documents whose full sketches
// are Hamming-closest to the query's. The Hamming pass is a linear scan,
// but over a few machine words per document (XOR + popcount), which costs
// one to two orders of magnitude less than the exact sparse cosine scan
// it stands in for; it is what bounds recall when bucket collisions are
// sparse. Callers are expected to re-rank the returned shortlist with
// exact cosine similarity, so whenever the true neighbours are inside
// the shortlist the final ranking is identical to the exact scan's.
//
// Everything is deterministic: the hyperplanes are derived from the seed
// by a self-contained SplitMix64 generator (no dependency on math/rand's
// stream), documents are sketched independently (so Add may fan out over
// any number of workers), and bucket posting lists are always stored in
// ascending document order. The same (seed, corpus) pair yields the same
// shortlist at every worker count.
package ann

import (
	"fmt"
	"math/bits"
	"sort"

	"datasculpt/internal/par"
	"datasculpt/internal/textproc"
)

// Defaults chosen for the hashed TF-IDF corpora in this repo: 64 bands
// of 16 bits give a 1024-bit sketch (sixteen uint64 words, 128 bytes per
// document) and bucket keys selective enough that banding stays cheap at
// 10^6 docs. The sketch width is what bounds recall on corpora whose
// bucket collisions are sparse — the Hamming top-up ranks documents by
// sketch distance, and 1024 bits estimate the cosine ordering tightly
// enough for recall@10 >= 0.9 at a 16x-shots shortlist (measured in
// BENCH_scale.json); 128 bits topped out near 0.34 on the same corpus.
const (
	DefaultTables = 64
	DefaultBits   = 16
)

// Config parameterizes an Index.
type Config struct {
	// Dim is the feature dimensionality (textproc.Featurizer.Dim).
	Dim int
	// Tables is the number of band hash tables (default DefaultTables).
	Tables int
	// Bits is the band width in sign bits, at most 32 (default
	// DefaultBits). Tables×Bits is the sketch width.
	Bits int
	// Seed derives the random hyperplanes. The same seed always yields
	// the same projections, independent of worker count or Go version.
	Seed int64
	// Workers bounds the sketching fan-out in Add (<= 1 sequential;
	// results are identical at every setting).
	Workers int
}

// Index is the LSH index. Build it once with Add (chunked calls are fine
// — ingestion does not need the whole corpus resident), then query it
// concurrently with Candidates; Add and Candidates must not race.
type Index struct {
	cfg    Config
	hashes int // Tables * Bits
	words  int // sketch words per doc

	// proj is the projection matrix stored feature-major: proj[f] holds
	// the ±1 coefficient of feature f against each of the `hashes`
	// hyperplanes, so sketching walks one contiguous row per non-zero.
	proj [][]float32

	// sketches holds the packed sign bits of every added vector,
	// words-per-doc consecutive uint64s.
	sketches []uint64
	// tables maps each band key to the ascending ids that share it.
	tables []map[uint32][]int32
	n      int

	// scratch for Candidates (single query goroutine at a time).
	visited []int32
	epoch   int32
	heap    []hamCand
}

// splitmix64 is the deterministic seed expander behind the projections
// (Steele et al. 2014). It is self-contained so index layouts never
// change underneath persisted benchmarks when the standard library's
// generators do.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New constructs an empty index. It panics on a non-positive dimension
// because that is always a programming error.
func New(cfg Config) *Index {
	if cfg.Dim <= 0 {
		panic("ann: non-positive dimension")
	}
	if cfg.Tables <= 0 {
		cfg.Tables = DefaultTables
	}
	if cfg.Bits <= 0 {
		cfg.Bits = DefaultBits
	}
	if cfg.Bits > 32 {
		cfg.Bits = 32
	}
	ix := &Index{
		cfg:    cfg,
		hashes: cfg.Tables * cfg.Bits,
	}
	ix.words = (ix.hashes + 63) / 64
	// Rademacher ±1 hyperplanes: for sparse inputs they are as good as
	// Gaussian ones (Achlioptas 2003) and need one bit of entropy each.
	ix.proj = make([][]float32, cfg.Dim)
	state := splitmix64(uint64(cfg.Seed) ^ 0xd4735bf215d1e9c3)
	for f := 0; f < cfg.Dim; f++ {
		row := make([]float32, ix.hashes)
		for h := 0; h < ix.hashes; h += 64 {
			state = splitmix64(state)
			word := state
			for b := 0; b < 64 && h+b < ix.hashes; b++ {
				if word&(1<<uint(b)) != 0 {
					row[h+b] = 1
				} else {
					row[h+b] = -1
				}
			}
		}
		ix.proj[f] = row
	}
	ix.tables = make([]map[uint32][]int32, cfg.Tables)
	for t := range ix.tables {
		ix.tables[t] = make(map[uint32][]int32)
	}
	return ix
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return ix.n }

// Sketch computes the packed sign sketch of one vector into dst (length
// >= ix.words), returning dst. It is exported for tests and for callers
// that stream sketches without retaining vectors.
func (ix *Index) Sketch(v *textproc.SparseVector, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, ix.words)
	}
	acc := make([]float32, ix.hashes)
	ix.sketchInto(v, acc, dst)
	return dst
}

// sketchInto projects v against every hyperplane (into acc, caller-owned
// scratch) and packs the sign bits into dst. Ties (projection exactly 0,
// common for empty vectors) count as sign bit 0.
func (ix *Index) sketchInto(v *textproc.SparseVector, acc []float32, dst []uint64) {
	for i := range acc {
		acc[i] = 0
	}
	for i, f := range v.Idx {
		val := v.Val[i]
		row := ix.proj[f]
		for h, c := range row {
			acc[h] += val * c
		}
	}
	for w := 0; w < ix.words; w++ {
		dst[w] = 0
	}
	for h, a := range acc {
		if a > 0 {
			dst[h/64] |= 1 << uint(h%64)
		}
	}
}

// bandKey extracts table t's bucket key from a packed sketch.
func (ix *Index) bandKey(sk []uint64, t int) uint32 {
	lo := t * ix.cfg.Bits
	word, off := lo/64, uint(lo%64)
	v := sk[word] >> off
	if off+uint(ix.cfg.Bits) > 64 && word+1 < len(sk) {
		v |= sk[word+1] << (64 - off)
	}
	return uint32(v & (1<<uint(ix.cfg.Bits) - 1))
}

// Add indexes the vectors, assigning them the next consecutive ids.
// Sketching fans out over cfg.Workers; bucket insertion happens in id
// order, so the index contents are identical at every worker count.
// Chunked calls let ingestion drop each vector batch after indexing.
func (ix *Index) Add(vecs []*textproc.SparseVector) {
	if len(vecs) == 0 {
		return
	}
	base := ix.n
	off := len(ix.sketches)
	ix.sketches = append(ix.sketches, make([]uint64, len(vecs)*ix.words)...)
	par.Chunks(ix.cfg.Workers, len(vecs), func(lo, hi int) {
		acc := make([]float32, ix.hashes)
		for i := lo; i < hi; i++ {
			dst := ix.sketches[off+i*ix.words : off+(i+1)*ix.words]
			ix.sketchInto(vecs[i], acc, dst)
		}
	})
	for i := range vecs {
		sk := ix.sketches[off+i*ix.words : off+(i+1)*ix.words]
		id := int32(base + i)
		for t := 0; t < ix.cfg.Tables; t++ {
			key := ix.bandKey(sk, t)
			ix.tables[t][key] = append(ix.tables[t][key], id)
		}
	}
	ix.n += len(vecs)
}

// hamCand is one entry of the bounded Hamming selection heap.
type hamCand struct {
	dist int32
	id   int32
}

// worse reports whether a ranks strictly worse than b for the shortlist
// (greater Hamming distance; ties broken toward the larger id, so the
// kept set is exactly the smallest (dist, id) pairs — deterministic).
func (a hamCand) worse(b hamCand) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.id > b.id
}

// Candidates returns the ids of an approximate-neighbour shortlist for q
// of at most `target` + banding-collision size, in ascending id order.
// The shortlist is the union of the query's band buckets (capped at
// 4*target, tables in order, each bucket in id order) topped up to
// `target` ids by full-sketch Hamming distance when the buckets alone
// fall short. A target >= Len() returns every id (the caller should
// prefer its exact path then).
func (ix *Index) Candidates(q *textproc.SparseVector, target int) []int32 {
	if target <= 0 {
		target = 1
	}
	if target >= ix.n {
		out := make([]int32, ix.n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	if len(ix.visited) < ix.n {
		ix.visited = append(ix.visited, make([]int32, ix.n-len(ix.visited))...)
	}
	ix.epoch++
	epoch := ix.epoch

	acc := make([]float32, ix.hashes)
	qsk := make([]uint64, ix.words)
	ix.sketchInto(q, acc, qsk)

	// Phase 1: banding buckets. The cap keeps a flood of near-duplicate
	// band collisions (which are genuinely similar documents) from
	// turning the rerank back into a full scan.
	bucketCap := 4 * target
	out := make([]int32, 0, bucketCap)
gather:
	for t := 0; t < ix.cfg.Tables; t++ {
		for _, id := range ix.tables[t][ix.bandKey(qsk, t)] {
			if ix.visited[id] == epoch {
				continue
			}
			ix.visited[id] = epoch
			out = append(out, id)
			if len(out) >= bucketCap {
				break gather
			}
		}
	}

	// Phase 2: Hamming top-up. A bounded max-heap over (distance, id)
	// keeps the smallest `need` pairs; the scan is two XOR+popcounts per
	// document.
	if need := target - len(out); need > 0 {
		h := ix.heap[:0]
		for id := 0; id < ix.n; id++ {
			if ix.visited[id] == epoch {
				continue
			}
			sk := ix.sketches[id*ix.words : (id+1)*ix.words]
			d := int32(0)
			for w := 0; w < ix.words; w++ {
				d += int32(bits.OnesCount64(sk[w] ^ qsk[w]))
			}
			c := hamCand{dist: d, id: int32(id)}
			if len(h) < need {
				h = append(h, c)
				siftUp(h, len(h)-1)
				continue
			}
			if c.worse(h[0]) {
				continue
			}
			h[0] = c
			siftDown(h, 0)
		}
		ix.heap = h
		for _, c := range h {
			out = append(out, c.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// siftUp/siftDown maintain a max-heap under hamCand.worse: the root is
// the worst kept candidate, i.e. the next one to be displaced.
func siftUp(h []hamCand, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].worse(h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []hamCand, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h[l].worse(h[worst]) {
			worst = l
		}
		if r < n && h[r].worse(h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// Stats summarizes the index for diagnostics and tests.
type Stats struct {
	Docs, Tables, Bits int
	SketchBytes        int // bytes spent on packed sketches
	Buckets            int // non-empty buckets across all tables
}

// Stats returns the current index statistics.
func (ix *Index) Stats() Stats {
	s := Stats{
		Docs:        ix.n,
		Tables:      ix.cfg.Tables,
		Bits:        ix.cfg.Bits,
		SketchBytes: len(ix.sketches) * 8,
	}
	for _, t := range ix.tables {
		s.Buckets += len(t)
	}
	return s
}

// String implements fmt.Stringer for log lines.
func (ix *Index) String() string {
	return fmt.Sprintf("ann.Index{docs=%d tables=%d bits=%d}", ix.n, ix.cfg.Tables, ix.cfg.Bits)
}
