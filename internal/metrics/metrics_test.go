package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 0, 0, 1}); !almostEqual(got, 0.75) {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("empty accuracy = %v", got)
	}
}

func TestAccuracyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	pred := []int{1, 0, 1, 2, -1}
	gold := []int{1, 1, 0, 2, 0}
	cm := ConfusionMatrix(pred, gold, 3)
	if cm[1][1] != 1 || cm[1][0] != 1 || cm[0][1] != 1 || cm[2][2] != 1 {
		t.Errorf("confusion matrix wrong: %v", cm)
	}
	// the -1 prediction is ignored
	total := 0
	for _, row := range cm {
		for _, v := range row {
			total += v
		}
	}
	if total != 4 {
		t.Errorf("total counted = %d, want 4", total)
	}
}

func TestBinaryF1(t *testing.T) {
	// tp=2, fp=1, fn=1 -> p=2/3, r=2/3, f1=2/3
	pred := []int{1, 1, 1, 0, 0}
	gold := []int{1, 1, 0, 1, 0}
	if got := BinaryF1(pred, gold); !almostEqual(got, 2.0/3.0) {
		t.Errorf("BinaryF1 = %v, want 2/3", got)
	}
	// no positive predictions and no positive gold -> 0 (undefined)
	if got := BinaryF1([]int{0, 0}, []int{0, 0}); got != 0 {
		t.Errorf("degenerate F1 = %v", got)
	}
}

func TestPerfectPredictionsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		labels := make([]int, len(raw))
		for i, r := range raw {
			labels[i] = int(r % 4)
		}
		if len(labels) == 0 {
			return true
		}
		return almostEqual(Accuracy(labels, labels), 1) &&
			almostEqual(MacroF1(labels, labels, 4), macroF1UpperBound(labels, 4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// macroF1UpperBound: with perfect predictions, per-class F1 is 1 for every
// class present in gold and 0 (undefined) for absent classes.
func macroF1UpperBound(gold []int, k int) float64 {
	present := make(map[int]bool)
	for _, g := range gold {
		present[g] = true
	}
	return float64(len(present)) / float64(k)
}

func TestF1BoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		n := 1 + rng.Intn(50)
		pred := make([]int, n)
		gold := make([]int, n)
		for i := 0; i < n; i++ {
			pred[i] = rng.Intn(2)
			gold[i] = rng.Intn(2)
		}
		f1 := BinaryF1(pred, gold)
		acc := Accuracy(pred, gold)
		return f1 >= 0 && f1 <= 1 && acc >= 0 && acc <= 1
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatal("metric out of [0,1]")
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev singleton = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0}); !almostEqual(got, 0) {
		t.Errorf("deterministic entropy = %v", got)
	}
	if got := Entropy([]float64{0.5, 0.5}); !almostEqual(got, math.Log(2)) {
		t.Errorf("uniform binary entropy = %v, want ln2", got)
	}
	uniform4 := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if !almostEqual(uniform4, math.Log(4)) {
		t.Errorf("uniform 4-class entropy = %v", uniform4)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{0.1, 0.7, 0.2}); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("tie ArgMax = %d, want 0 (lowest index)", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestPrecisionRecallOutOfRangeClass(t *testing.T) {
	cm := ConfusionMatrix([]int{0, 1}, []int{0, 1}, 2)
	p, r, f1 := PrecisionRecallF1(cm, 5)
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("out-of-range class PRF = %v %v %v", p, r, f1)
	}
}
