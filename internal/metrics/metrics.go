// Package metrics implements the evaluation measures reported in the
// DataSculpt paper: classification accuracy, binary F1 for the imbalanced
// datasets (SMS, Spouse), per-class precision/recall, confusion matrices,
// and the label-function statistics of Table 2 (per-LF accuracy and
// coverage, and total coverage).
package metrics

import (
	"fmt"
	"math"
)

// Accuracy returns the fraction of predictions equal to the gold labels.
// It returns 0 for empty input. The slices must have equal length.
func Accuracy(pred, gold []int) float64 {
	if len(pred) != len(gold) {
		panic(fmt.Sprintf("metrics: len(pred)=%d != len(gold)=%d", len(pred), len(gold)))
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == gold[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix counts predictions by (gold, predicted) class over k
// classes. Labels outside [0,k) are ignored, which lets callers pass
// abstain markers (-1) without pre-filtering.
func ConfusionMatrix(pred, gold []int, k int) [][]int {
	if len(pred) != len(gold) {
		panic(fmt.Sprintf("metrics: len(pred)=%d != len(gold)=%d", len(pred), len(gold)))
	}
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for i := range pred {
		g, p := gold[i], pred[i]
		if g < 0 || g >= k || p < 0 || p >= k {
			continue
		}
		m[g][p]++
	}
	return m
}

// PrecisionRecallF1 computes precision, recall and F1 for one target class
// from a confusion matrix. Undefined ratios (zero denominators) are 0.
func PrecisionRecallF1(cm [][]int, class int) (precision, recall, f1 float64) {
	if class < 0 || class >= len(cm) {
		return 0, 0, 0
	}
	tp := cm[class][class]
	var fp, fn int
	for c := range cm {
		if c == class {
			continue
		}
		fp += cm[c][class]
		fn += cm[class][c]
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// BinaryF1 returns the F1 score of the positive class (label 1), the
// metric the paper reports for the imbalanced SMS and Spouse datasets.
func BinaryF1(pred, gold []int) float64 {
	cm := ConfusionMatrix(pred, gold, 2)
	_, _, f1 := PrecisionRecallF1(cm, 1)
	return f1
}

// MacroF1 averages per-class F1 over k classes.
func MacroF1(pred, gold []int, k int) float64 {
	cm := ConfusionMatrix(pred, gold, k)
	var sum float64
	for c := 0; c < k; c++ {
		_, _, f1 := PrecisionRecallF1(cm, c)
		sum += f1
	}
	return sum / float64(k)
}

// Mean returns the arithmetic mean of the values, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation, or 0 for fewer than two
// values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Non-positive entries contribute zero, so callers may pass unsmoothed
// model outputs directly.
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}

// ArgMax returns the index of the largest value, breaking ties toward the
// lowest index; -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
