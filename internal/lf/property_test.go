package lf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"datasculpt/internal/dataset"
)

// TestSerializeRoundTripProperty round-trips randomly generated LF sets
// and verifies behavioural equivalence on random probes.
func TestSerializeRoundTripProperty(t *testing.T) {
	vocab := []string{"free", "cash", "prize", "melody", "song", "channel",
		"subscribe", "winner", "lovely", "amazing"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lfs []LabelFunction
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			words := 1 + rng.Intn(3)
			var parts []string
			for w := 0; w < words; w++ {
				parts = append(parts, vocab[rng.Intn(len(vocab))])
			}
			phrase := strings.Join(parts, " ")
			class := rng.Intn(3)
			switch rng.Intn(3) {
			case 0:
				f, err := NewKeywordLF(phrase, class)
				if err != nil {
					return false
				}
				lfs = append(lfs, f)
			case 1:
				f, err := NewEntityKeywordLF(phrase, class)
				if err != nil {
					return false
				}
				lfs = append(lfs, f)
			default:
				other := vocab[rng.Intn(len(vocab))]
				f, err := NewDisjunctionLF("p", []string{phrase, other}, class, rng.Intn(2) == 0)
				if err != nil {
					return false
				}
				lfs = append(lfs, f)
			}
		}
		data, err := MarshalLFs(lfs)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		back, err := UnmarshalLFs(data)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		if len(back) != len(lfs) {
			return false
		}
		// behavioural equivalence on random probes (with and without
		// entity spans)
		for trial := 0; trial < 10; trial++ {
			var words []string
			for w := 0; w < 3+rng.Intn(10); w++ {
				words = append(words, vocab[rng.Intn(len(vocab))])
			}
			probe := &dataset.Example{Text: strings.Join(words, " "), E1Pos: -1, E2Pos: -1}
			probe.EnsureTokens()
			if rng.Intn(2) == 0 && len(probe.Tokens) >= 4 {
				probe.E1Pos, probe.E2Pos = 0, 2
				probe.Entity1 = probe.Tokens[0] + " " + probe.Tokens[1]
				probe.Entity2 = probe.Tokens[2] + " " + probe.Tokens[3]
			}
			for i := range lfs {
				if lfs[i].Apply(probe) != back[i].Apply(probe) {
					t.Logf("LF %d (%s) diverges after round trip", i, lfs[i].Name())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVoteMatrixColumnRowConsistencyProperty: Row and Column views of the
// matrix must agree, and coverage must equal the active fraction.
func TestVoteMatrixColumnRowConsistencyProperty(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "free", "cash"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var split []*dataset.Example
		for i := 0; i < 30; i++ {
			var words []string
			for w := 0; w < 2+rng.Intn(8); w++ {
				words = append(words, vocab[rng.Intn(len(vocab))])
			}
			e := &dataset.Example{ID: i, Text: strings.Join(words, " "), E1Pos: -1, E2Pos: -1}
			e.EnsureTokens()
			split = append(split, e)
		}
		var lfs []LabelFunction
		for j := 0; j < 4; j++ {
			f, err := NewKeywordLF(vocab[rng.Intn(len(vocab))], rng.Intn(2))
			if err != nil {
				return false
			}
			lfs = append(lfs, f)
		}
		vm := BuildVoteMatrix(NewIndex(split), lfs)
		for j := 0; j < vm.NumLFs(); j++ {
			col := vm.Column(j)
			active := 0
			for i := range col {
				if int(col[i]) != vm.Vote(i, j) {
					return false
				}
				if col[i] != Abstain {
					active++
				}
				row := vm.Row(i, nil)
				if row[j] != vm.Vote(i, j) {
					return false
				}
			}
			if vm.Coverage(j) != float64(active)/float64(vm.NumExamples()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
