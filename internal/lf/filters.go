package lf

import (
	"fmt"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// The three filters of paper §3.5. A candidate LF must pass validity,
// then accuracy (on the labeled validation set), then redundancy (against
// the already-accepted set) before joining the LF set. Each filter can be
// disabled for the Table 5 ablation.

// DefaultAccuracyThreshold is the validation-accuracy floor below which
// candidate LFs are pruned (paper default 0.6).
const DefaultAccuracyThreshold = 0.6

// DefaultMaxConsensus is the agreement ratio above which a candidate is
// considered redundant with an existing LF (paper default 0.95).
const DefaultMaxConsensus = 0.95

// RejectReason classifies why a candidate LF was dropped.
type RejectReason string

// Reject reasons reported by the filter chain.
const (
	RejectInvalid    RejectReason = "invalid"
	RejectInaccurate RejectReason = "inaccurate"
	RejectRedundant  RejectReason = "redundant"
	RejectDuplicate  RejectReason = "duplicate"
)

// ValidateCandidate implements the validity filter: the keyword must
// normalize to a 1-3 gram and the label must be a candidate class. On
// success it returns the constructed LF (entity-aware for relation tasks).
func ValidateCandidate(task dataset.TaskType, rawKeyword string, class, numClasses int) (LabelFunction, error) {
	if class < 0 || class >= numClasses {
		return nil, fmt.Errorf("validity: label %d outside [0,%d)", class, numClasses)
	}
	phrase, n := textproc.NormalizePhrase(rawKeyword)
	if n == 0 {
		return nil, fmt.Errorf("validity: empty keyword %q", rawKeyword)
	}
	if n > textproc.MaxKeywordLen {
		return nil, fmt.Errorf("validity: keyword %q is a %d-gram, max %d", rawKeyword, n, textproc.MaxKeywordLen)
	}
	if task == dataset.RelationClassification {
		return &EntityKeywordLF{Keyword: phrase, Class: class}, nil
	}
	return &KeywordLF{Keyword: phrase, Class: class}, nil
}

// AccuracyFilter prunes LFs whose accuracy on the labeled validation set
// falls below Threshold. An LF inactive on every validation instance
// passes (the paper keeps such LFs: no evidence against them).
type AccuracyFilter struct {
	Threshold float64
	index     *Index
	gold      []int
}

// NewAccuracyFilter builds the filter over the validation split. A
// non-positive threshold selects DefaultAccuracyThreshold.
func NewAccuracyFilter(valid []*dataset.Example, threshold float64) *AccuracyFilter {
	if threshold <= 0 {
		threshold = DefaultAccuracyThreshold
	}
	return &AccuracyFilter{
		Threshold: threshold,
		index:     NewIndex(valid),
		gold:      dataset.Labels(valid),
	}
}

// Pass evaluates the LF on the validation set. It returns whether the LF
// survives, its measured accuracy, and how many validation instances it
// was active on (accuracy is meaningless when active == 0).
func (f *AccuracyFilter) Pass(cand LabelFunction) (ok bool, accuracy float64, active int) {
	split := f.index.Split()
	correct := 0
	for _, id := range f.index.ActiveDocs(cand) {
		vote := cand.Apply(split[id])
		if vote == Abstain || f.gold[id] == dataset.NoLabel {
			continue
		}
		active++
		if vote == f.gold[id] {
			correct++
		}
	}
	if active == 0 {
		return true, 0, 0
	}
	accuracy = float64(correct) / float64(active)
	return accuracy >= f.Threshold, accuracy, active
}

// RedundancyFilter prunes candidates whose agreement with an accepted LF
// exceeds MaxConsensus over active instances (intersection-over-union of
// agreeing activations, measured on the train split). Activations are
// kept as sorted posting lists so each comparison costs O(active-set
// size) rather than O(train size) — hundreds of accepted LFs over 96k
// Agnews documents would otherwise dominate the pipeline.
type RedundancyFilter struct {
	MaxConsensus float64
	index        *Index
	accepted     []activeSet
}

// activeSet is an LF's sorted active document ids with their votes.
type activeSet struct {
	name  string
	ids   []int32
	votes []int8
}

// NewRedundancyFilter builds the filter over the (typically unlabeled)
// train split. A non-positive maxConsensus selects DefaultMaxConsensus.
func NewRedundancyFilter(train []*dataset.Example, maxConsensus float64) *RedundancyFilter {
	if maxConsensus <= 0 {
		maxConsensus = DefaultMaxConsensus
	}
	return &RedundancyFilter{
		MaxConsensus: maxConsensus,
		index:        NewIndex(train),
	}
}

// activeSetOf materializes the candidate's activations on the train split.
func (f *RedundancyFilter) activeSetOf(cand LabelFunction) activeSet {
	ids := f.index.ActiveDocs(cand)
	votes := make([]int8, len(ids))
	split := f.index.Split()
	for t, id := range ids {
		votes[t] = int8(cand.Apply(split[id]))
	}
	return activeSet{name: cand.Name(), ids: ids, votes: votes}
}

// setConsensus merges two sorted active sets: |agreeing intersection| /
// |union|, the same quantity Consensus computes over dense columns.
func setConsensus(a, b activeSet) float64 {
	i, j, inter, union := 0, 0, 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] < b.ids[j]:
			i++
			union++
		case a.ids[i] > b.ids[j]:
			j++
			union++
		default:
			if a.votes[i] == b.votes[j] {
				inter++
			}
			i++
			j++
			union++
		}
	}
	union += (len(a.ids) - i) + (len(b.ids) - j)
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Pass reports whether the candidate is non-redundant. When it fails, the
// name of the most-similar accepted LF and the consensus value are
// returned for diagnostics.
func (f *RedundancyFilter) Pass(cand LabelFunction) (ok bool, closest string, consensus float64) {
	set := f.activeSetOf(cand)
	worst := -1.0
	for _, acc := range f.accepted {
		c := setConsensus(set, acc)
		if c > worst {
			worst, closest = c, acc.name
		}
		if c > f.MaxConsensus {
			return false, acc.name, c
		}
	}
	if worst < 0 {
		worst = 0
	}
	return true, closest, worst
}

// Add registers an accepted LF so later candidates are compared to it.
func (f *RedundancyFilter) Add(accepted LabelFunction) {
	f.accepted = append(f.accepted, f.activeSetOf(accepted))
}

// FilterConfig selects which filters the pipeline applies — the Table 5
// ablation toggles.
type FilterConfig struct {
	// UseAccuracy enables the validation-accuracy filter.
	UseAccuracy bool
	// UseRedundancy enables the redundancy filter.
	UseRedundancy bool
	// AccuracyThreshold overrides DefaultAccuracyThreshold when positive.
	AccuracyThreshold float64
	// MaxConsensus overrides DefaultMaxConsensus when positive.
	MaxConsensus float64
}

// AllFilters is the paper's default configuration.
func AllFilters() FilterConfig {
	return FilterConfig{UseAccuracy: true, UseRedundancy: true}
}

// Rejected records one filtered-out candidate, for post-hoc inspection
// and for the revision loop (counterexample re-prompting).
type Rejected struct {
	Keyword string
	Class   int
	Reason  RejectReason
	// Accuracy is the measured validation accuracy for accuracy-filter
	// rejections (zero otherwise).
	Accuracy float64
}

// FilterChain applies the validity, accuracy and redundancy filters in
// order and tracks rejection statistics. It also deduplicates exact
// repeats by LF name regardless of configuration (re-adding the identical
// LF is never useful).
type FilterChain struct {
	task       dataset.TaskType
	numClasses int
	cfg        FilterConfig
	accuracy   *AccuracyFilter
	redundancy *RedundancyFilter
	names      map[string]struct{}
	accepted   []LabelFunction
	rejects    map[RejectReason]int
	rejected   []Rejected
}

// NewFilterChain wires the chain for one dataset, building fresh indices.
func NewFilterChain(d *dataset.Dataset, cfg FilterConfig) *FilterChain {
	return NewFilterChainIndexed(d, cfg, nil, nil)
}

// NewFilterChainIndexed wires the chain reusing prebuilt train/valid
// indices (nil arguments build fresh ones). The pipeline shares one train
// index between the redundancy filter, the samplers and the final vote
// matrix; rebuilding it for Agnews' 96k documents is measurably wasteful.
func NewFilterChainIndexed(d *dataset.Dataset, cfg FilterConfig, trainIx, validIx *Index) *FilterChain {
	c := &FilterChain{
		task:       d.Task,
		numClasses: d.NumClasses(),
		cfg:        cfg,
		names:      make(map[string]struct{}),
		rejects:    make(map[RejectReason]int),
	}
	if cfg.UseAccuracy {
		threshold := cfg.AccuracyThreshold
		if threshold <= 0 {
			threshold = DefaultAccuracyThreshold
		}
		if validIx == nil {
			validIx = NewIndex(d.Valid)
		}
		c.accuracy = &AccuracyFilter{
			Threshold: threshold,
			index:     validIx,
			gold:      dataset.Labels(d.Valid),
		}
	}
	if cfg.UseRedundancy {
		maxCons := cfg.MaxConsensus
		if maxCons <= 0 {
			maxCons = DefaultMaxConsensus
		}
		if trainIx == nil {
			trainIx = NewIndex(d.Train)
		}
		c.redundancy = &RedundancyFilter{MaxConsensus: maxCons, index: trainIx}
	}
	return c
}

// Offer runs a raw (keyword, class) candidate through the chain. It
// returns the accepted LF, or a nil LF plus the rejection reason.
func (c *FilterChain) Offer(rawKeyword string, class int) (LabelFunction, RejectReason) {
	cand, err := ValidateCandidate(c.task, rawKeyword, class, c.numClasses)
	if err != nil {
		c.rejects[RejectInvalid]++
		c.rejected = append(c.rejected, Rejected{Keyword: rawKeyword, Class: class, Reason: RejectInvalid})
		return nil, RejectInvalid
	}
	if _, dup := c.names[cand.Name()]; dup {
		c.rejects[RejectDuplicate]++
		return nil, RejectDuplicate
	}
	if c.accuracy != nil {
		if ok, acc, _ := c.accuracy.Pass(cand); !ok {
			c.rejects[RejectInaccurate]++
			c.rejected = append(c.rejected, Rejected{
				Keyword: rawKeyword, Class: class, Reason: RejectInaccurate, Accuracy: acc,
			})
			return nil, RejectInaccurate
		}
	}
	if c.redundancy != nil {
		if ok, _, _ := c.redundancy.Pass(cand); !ok {
			c.rejects[RejectRedundant]++
			c.rejected = append(c.rejected, Rejected{Keyword: rawKeyword, Class: class, Reason: RejectRedundant})
			return nil, RejectRedundant
		}
	}
	c.names[cand.Name()] = struct{}{}
	c.accepted = append(c.accepted, cand)
	if c.redundancy != nil {
		c.redundancy.Add(cand)
	}
	return cand, ""
}

// Seed force-registers already-accepted LFs — a frozen parent set the
// chain extends rather than re-litigates. Seeded LFs bypass the
// accuracy and redundancy filters (they were accepted by an earlier
// run and may score differently on a new corpus) but still feed the
// duplicate and redundancy bookkeeping, so later Offer calls cannot
// re-propose them.
func (c *FilterChain) Seed(lfs []LabelFunction) {
	for _, cand := range lfs {
		if _, dup := c.names[cand.Name()]; dup {
			continue
		}
		c.names[cand.Name()] = struct{}{}
		c.accepted = append(c.accepted, cand)
		if c.redundancy != nil {
			c.redundancy.Add(cand)
		}
	}
}

// Accepted returns the LFs that survived, in acceptance order.
func (c *FilterChain) Accepted() []LabelFunction { return c.accepted }

// Rejected returns the filtered-out candidates in rejection order
// (duplicates are not recorded; re-offering an accepted LF is not a
// rejection worth revising).
func (c *FilterChain) Rejected() []Rejected { return c.rejected }

// Rejections returns a copy of the per-reason rejection counts.
func (c *FilterChain) Rejections() map[RejectReason]int {
	out := make(map[RejectReason]int, len(c.rejects))
	for k, v := range c.rejects {
		out[k] = v
	}
	return out
}
