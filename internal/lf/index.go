package lf

import (
	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// Index is an inverted unigram index over one dataset split. It makes
// keyword-LF evaluation fast: instead of scanning every document for every
// phrase (hundreds of LFs × up to 96k documents on Agnews), phrase lookups
// seed from the posting list of the phrase's rarest word and verify only
// those candidates.
type Index struct {
	split    []*dataset.Example
	postings map[string][]int32
}

// NewIndex builds the index. Token caches are populated as a side effect.
func NewIndex(split []*dataset.Example) *Index {
	ix := &Index{
		split:    split,
		postings: make(map[string][]int32, 2048),
	}
	for i, e := range split {
		e.EnsureTokens()
		prev := ""
		for _, tok := range e.Tokens {
			if tok == prev {
				continue // cheap local dedupe; full dedupe below
			}
			prev = tok
			list := ix.postings[tok]
			if len(list) > 0 && list[len(list)-1] == int32(i) {
				continue
			}
			ix.postings[tok] = append(list, int32(i))
		}
	}
	return ix
}

// Size returns the number of indexed documents.
func (ix *Index) Size() int { return len(ix.split) }

// Split returns the indexed examples.
func (ix *Index) Split() []*dataset.Example { return ix.split }

// DocFreq returns how many documents contain the given single token.
func (ix *Index) DocFreq(token string) int { return len(ix.postings[token]) }

// Docs returns the ascending document ids whose tokens contain the
// canonical phrase. Single-word phrases come straight from the posting
// list; multi-word phrases intersect the words' posting lists and
// verify contiguity on the survivors.
func (ix *Index) Docs(phrase string) []int32 {
	words := splitPhrase(phrase)
	switch len(words) {
	case 0:
		return nil
	case 1:
		return ix.postings[words[0]]
	}
	var out []int32
	ix.forEachPhraseDoc(words, func(id int32) { out = append(out, id) })
	return out
}

func splitPhrase(phrase string) []string {
	var out []string
	start := -1
	for i := 0; i < len(phrase); i++ {
		if phrase[i] == ' ' {
			if start >= 0 {
				out = append(out, phrase[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, phrase[start:])
	}
	return out
}

// CountDocs returns how many documents contain the canonical phrase —
// len(Docs(phrase)) without materializing the id slice for multi-word
// phrases. Hot callers that only need coverage (the SEU keyword-utility
// cache) use this to stay allocation-free.
func (ix *Index) CountDocs(phrase string) int {
	words := splitPhrase(phrase)
	switch len(words) {
	case 0:
		return 0
	case 1:
		return len(ix.postings[words[0]])
	}
	n := 0
	ix.forEachPhraseDoc(words, func(int32) { n++ })
	return n
}

// ForEachDoc calls fn for every document containing the canonical
// phrase, in ascending id order, without allocating an id slice.
func (ix *Index) ForEachDoc(phrase string, fn func(id int32)) {
	words := splitPhrase(phrase)
	switch len(words) {
	case 0:
		return
	case 1:
		for _, id := range ix.postings[words[0]] {
			fn(id)
		}
		return
	}
	ix.forEachPhraseDoc(words, fn)
}

// forEachPhraseDoc walks the documents containing a multi-word phrase in
// ascending id order. A document can only contain the phrase if it
// contains every word, so candidates are the intersection of the words'
// posting lists — seeded from the rarest word, with membership in each
// other list checked by binary search — and only the intersection is
// scanned for contiguity. The per-document token scan uses the pre-split
// words (textproc.ContainsTokens), so nothing re-splits the phrase in
// the loop. Typically the intersection is orders of magnitude smaller
// than any single posting list, which is what makes per-keyword
// coverage/precision queries (the SEU utility cache) cheap.
func (ix *Index) forEachPhraseDoc(words []string, fn func(id int32)) {
	seed, others := ix.postings[words[0]], make([][]int32, 0, len(words)-1)
	for _, w := range words[1:] {
		list := ix.postings[w]
		if len(list) == 0 {
			return
		}
		if len(list) < len(seed) {
			seed, list = list, seed
		}
		others = append(others, list)
	}
	if len(seed) == 0 {
		return
	}
candidates:
	for _, id := range seed {
		for _, list := range others {
			if !containsID(list, id) {
				continue candidates
			}
		}
		if textproc.ContainsTokens(ix.split[id].Tokens, words) {
			fn(id)
		}
	}
}

// containsID reports whether the ascending posting list contains id.
func containsID(list []int32, id int32) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == id
}

// ActiveDocs returns the ascending document ids on which the LF does not
// abstain. Keyword LFs use the fast posting-list path; every other LF is
// evaluated by a full scan.
func (ix *Index) ActiveDocs(f LabelFunction) []int32 {
	switch t := f.(type) {
	case *KeywordLF:
		return ix.Docs(t.Keyword)
	case *EntityKeywordLF:
		var out []int32
		for _, id := range ix.Docs(t.Keyword) {
			if t.Apply(ix.split[id]) != Abstain {
				out = append(out, id)
			}
		}
		return out
	default:
		var out []int32
		for i, e := range ix.split {
			if f.Apply(e) != Abstain {
				out = append(out, int32(i))
			}
		}
		return out
	}
}
