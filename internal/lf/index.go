package lf

import (
	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// Index is an inverted unigram index over one dataset split. It makes
// keyword-LF evaluation fast: instead of scanning every document for every
// phrase (hundreds of LFs × up to 96k documents on Agnews), phrase lookups
// seed from the posting list of the phrase's rarest word and verify only
// those candidates.
type Index struct {
	split    []*dataset.Example
	postings map[string][]int32
}

// NewIndex builds the index. Token caches are populated as a side effect.
func NewIndex(split []*dataset.Example) *Index {
	ix := &Index{
		split:    split,
		postings: make(map[string][]int32, 2048),
	}
	for i, e := range split {
		e.EnsureTokens()
		prev := ""
		for _, tok := range e.Tokens {
			if tok == prev {
				continue // cheap local dedupe; full dedupe below
			}
			prev = tok
			list := ix.postings[tok]
			if len(list) > 0 && list[len(list)-1] == int32(i) {
				continue
			}
			ix.postings[tok] = append(list, int32(i))
		}
	}
	return ix
}

// Size returns the number of indexed documents.
func (ix *Index) Size() int { return len(ix.split) }

// Split returns the indexed examples.
func (ix *Index) Split() []*dataset.Example { return ix.split }

// DocFreq returns how many documents contain the given single token.
func (ix *Index) DocFreq(token string) int { return len(ix.postings[token]) }

// Docs returns the ascending document ids whose tokens contain the
// canonical phrase. Single-word phrases come straight from the posting
// list; multi-word phrases seed from the rarest word and verify
// contiguity per candidate.
func (ix *Index) Docs(phrase string) []int32 {
	words := splitPhrase(phrase)
	switch len(words) {
	case 0:
		return nil
	case 1:
		return ix.postings[words[0]]
	}
	seed := words[0]
	for _, w := range words[1:] {
		if len(ix.postings[w]) < len(ix.postings[seed]) {
			seed = w
		}
	}
	candidates := ix.postings[seed]
	var out []int32
	for _, id := range candidates {
		if textproc.ContainsPhrase(ix.split[id].Tokens, phrase) {
			out = append(out, id)
		}
	}
	return out
}

func splitPhrase(phrase string) []string {
	var out []string
	start := -1
	for i := 0; i < len(phrase); i++ {
		if phrase[i] == ' ' {
			if start >= 0 {
				out = append(out, phrase[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, phrase[start:])
	}
	return out
}

// ActiveDocs returns the ascending document ids on which the LF does not
// abstain. Keyword LFs use the fast posting-list path; every other LF is
// evaluated by a full scan.
func (ix *Index) ActiveDocs(f LabelFunction) []int32 {
	switch t := f.(type) {
	case *KeywordLF:
		return ix.Docs(t.Keyword)
	case *EntityKeywordLF:
		var out []int32
		for _, id := range ix.Docs(t.Keyword) {
			if t.Apply(ix.split[id]) != Abstain {
				out = append(out, id)
			}
		}
		return out
	default:
		var out []int32
		for i, e := range ix.split {
			if f.Apply(e) != Abstain {
				out = append(out, int32(i))
			}
		}
		return out
	}
}
