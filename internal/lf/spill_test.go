package lf

import (
	"math/rand"
	"sync"
	"testing"

	"datasculpt/internal/obs"
)

// buildSpillPair evaluates the same LF batches into a plain matrix and a
// spilling one (budget small enough to force evictions) and returns both.
func buildSpillPair(t *testing.T, seed int64, budget int64, metrics *obs.Registry) (plain, spilled *VoteMatrix, ix *Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alpha", "beta", "gamma", "delta", "free", "cash",
		"prize", "song", "winner", "channel"}
	split := randomSplit(rng, vocab, 400)
	lfs := randomLFs(t, rng, vocab, 30)
	ix = NewIndex(split)

	plain = NewVoteMatrix(len(split))
	spilled = NewVoteMatrix(len(split))
	if err := spilled.EnableSpill(budget, t.TempDir(), metrics); err != nil {
		t.Fatal(err)
	}
	// append in uneven batches to exercise the incremental path
	for lo := 0; lo < len(lfs); {
		hi := lo + 1 + rng.Intn(7)
		if hi > len(lfs) {
			hi = len(lfs)
		}
		plain.AppendLFs(ix, lfs[lo:hi], 2)
		spilled.AppendLFs(ix, lfs[lo:hi], 2)
		lo = hi
	}
	return plain, spilled, ix
}

// TestSpillEquivalence: a spilling matrix under a budget tight enough to
// evict most columns must agree with the plain matrix on every accessor —
// votes, rows, columns, active lists, stats, majority votes.
func TestSpillEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		reg := obs.NewRegistry()
		plain, spilled, _ := buildSpillPair(t, seed, 512, reg)
		defer spilled.Close()

		if !spilled.Spilling() {
			t.Fatal("EnableSpill did not mark the matrix")
		}
		st := spilled.SpillStats()
		if st.Spills == 0 {
			t.Fatalf("seed %d: 512-byte budget produced no evictions (resident %d)", seed, st.ResidentBytes)
		}
		if reg.CounterValue("eval_votematrix_spill_columns_total") != float64(st.Spills) {
			t.Error("spill counter diverges from SpillStats")
		}

		if !matricesEqual(t, spilled, plain) {
			t.Fatalf("seed %d: spilled matrix diverges from plain", seed)
		}
		// random access across the two representations
		rng := rand.New(rand.NewSource(seed + 100))
		for k := 0; k < 500; k++ {
			i, j := rng.Intn(plain.NumExamples()), rng.Intn(plain.NumLFs())
			if plain.Vote(i, j) != spilled.Vote(i, j) {
				t.Fatalf("Vote(%d,%d) diverges", i, j)
			}
		}
		for i := 0; i < plain.NumExamples(); i += 17 {
			pr, sr := plain.Row(i, nil), spilled.Row(i, nil)
			for j := range pr {
				if pr[j] != sr[j] {
					t.Fatalf("Row(%d)[%d] diverges", i, j)
				}
			}
		}
		gold := make([]int, plain.NumExamples())
		rng2 := rand.New(rand.NewSource(seed))
		for i := range gold {
			gold[i] = rng2.Intn(3)
		}
		ps, ss := plain.ComputeStats(gold, 2), spilled.ComputeStats(gold, 2)
		if ps != ss {
			t.Fatalf("stats diverge: %+v vs %+v", ps, ss)
		}
		pm, sm := plain.MajorityVotes(3), spilled.MajorityVotes(3)
		for i := range pm {
			if pm[i] != sm[i] {
				t.Fatalf("MajorityVotes[%d] diverges: %d vs %d", i, pm[i], sm[i])
			}
		}
		pc, sc := plain.Covered(), spilled.Covered()
		for i := range pc {
			if pc[i] != sc[i] {
				t.Fatalf("Covered[%d] diverges", i)
			}
		}
		for j := 0; j < plain.NumLFs(); j++ {
			pa, pn := plain.LFAccuracy(j, gold)
			sa, sn := spilled.LFAccuracy(j, gold)
			if pa != sa || pn != sn {
				t.Fatalf("LFAccuracy(%d) diverges", j)
			}
			if plain.Coverage(j) != spilled.Coverage(j) {
				t.Fatalf("Coverage(%d) diverges", j)
			}
		}
	}
}

// TestSpillResidentBounded: after a full sweep the resident bytes never
// exceed budget plus one column (the pinned fault-in bound).
func TestSpillResidentBounded(t *testing.T) {
	const budget = 1024
	_, spilled, _ := buildSpillPair(t, 7, budget, nil)
	defer spilled.Close()
	var maxCol int64
	for j := 0; j < spilled.NumLFs(); j++ {
		if b := int64(spilled.activeLen(j)) * spillBytesPerVote; b > maxCol {
			maxCol = b
		}
	}
	// touch every column a few times in a hostile order
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 200; k++ {
		spilled.Active(rng.Intn(spilled.NumLFs()))
		if st := spilled.SpillStats(); st.ResidentBytes > budget+maxCol {
			t.Fatalf("resident %d exceeds budget %d + max column %d", st.ResidentBytes, budget, maxCol)
		}
	}
	if st := spilled.SpillStats(); st.Reloads == 0 {
		t.Fatal("no reloads despite a tight budget")
	}
}

// TestSpillConcurrentAccess runs concurrent readers over a spilling
// matrix under -race: fault-ins and evictions must not corrupt views.
func TestSpillConcurrentAccess(t *testing.T) {
	plain, spilled, _ := buildSpillPair(t, 5, 768, nil)
	defer spilled.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for k := 0; k < 300; k++ {
				j := rng.Intn(spilled.NumLFs())
				ids, votes := spilled.Active(j)
				wantIDs, wantVotes := plain.Active(j)
				if len(ids) != len(wantIDs) {
					t.Errorf("worker %d: Active(%d) length diverges", w, j)
					return
				}
				for u := range ids {
					if ids[u] != wantIDs[u] || votes[u] != wantVotes[u] {
						t.Errorf("worker %d: Active(%d)[%d] diverges", w, j, u)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEnableSpillValidation: rejects non-empty matrices and bad budgets.
func TestEnableSpillValidation(t *testing.T) {
	vm := NewVoteMatrix(10)
	if err := vm.EnableSpill(0, t.TempDir(), nil); err == nil {
		t.Error("zero budget accepted")
	}
	plain, _, ix := buildSpillPair(t, 11, 1<<20, nil)
	_ = ix
	if err := plain.EnableSpill(1<<20, t.TempDir(), nil); err == nil {
		t.Error("EnableSpill accepted a non-empty matrix")
	}
	// zero-value stats for a plain matrix
	if st := plain.SpillStats(); st != (SpillStats{}) {
		t.Errorf("plain matrix reports spill stats %+v", st)
	}
	if plain.Close() != nil {
		t.Error("Close on a plain matrix errored")
	}
}
