package lf

import (
	"strings"
	"testing"

	"datasculpt/internal/dataset"
)

func TestDisjunctionLF(t *testing.T) {
	f, err := NewDisjunctionLF("spamwords", []string{"Free Gift", "subscribe"}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Apply(ex(0, "claim your free gift now")); got != 1 {
		t.Errorf("first disjunct = %d", got)
	}
	if got := f.Apply(ex(1, "please subscribe today")); got != 1 {
		t.Errorf("second disjunct = %d", got)
	}
	if got := f.Apply(ex(2, "lovely weather")); got != Abstain {
		t.Errorf("no disjunct = %d", got)
	}
	if f.TargetClass() != 1 {
		t.Error("target class")
	}
	if !strings.Contains(f.Name(), "free gift|subscribe") {
		t.Errorf("name = %q", f.Name())
	}
}

func TestDisjunctionLFEntityAware(t *testing.T) {
	f, err := NewDisjunctionLF("rel", []string{"married", "wedded"}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	e := &dataset.Example{
		Text:    "john smith married mary jones",
		Entity1: "john smith", Entity2: "mary jones",
		E1Pos: 0, E2Pos: 3,
	}
	e.EnsureTokens()
	if got := f.Apply(e); got != 1 {
		t.Errorf("in-window = %d", got)
	}
	if got := f.Apply(ex(0, "they married")); got != Abstain {
		t.Errorf("no entities = %d", got)
	}
}

func TestDisjunctionLFValidation(t *testing.T) {
	if _, err := NewDisjunctionLF("", []string{"x"}, 0, false); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewDisjunctionLF("n", nil, 0, false); err == nil {
		t.Error("no keywords accepted")
	}
	if _, err := NewDisjunctionLF("n", []string{"a b c d"}, 0, false); err == nil {
		t.Error("4-gram keyword accepted")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	kw, _ := NewKeywordLF("free", 1)
	ekw, _ := NewEntityKeywordLF("married", 1)
	ekw.Window = 6
	dis, _ := NewDisjunctionLF("grp", []string{"prize", "cash prize"}, 1, true)

	data, err := MarshalLFs([]LabelFunction{kw, ekw, dis})
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalLFs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("decoded %d LFs", len(back))
	}
	if back[0].Name() != kw.Name() || back[1].Name() != ekw.Name() || back[2].Name() != dis.Name() {
		t.Errorf("names differ after round trip: %s %s %s",
			back[0].Name(), back[1].Name(), back[2].Name())
	}
	if got := back[1].(*EntityKeywordLF).Window; got != 6 {
		t.Errorf("window lost: %d", got)
	}
	if got := back[2].(*DisjunctionLF); !got.EntityAware {
		t.Error("entity-aware flag lost")
	}
	// behavior equivalence on a sample
	probe := ex(0, "win a cash prize")
	for i, f := range []LabelFunction{kw, ekw, dis} {
		if f.Apply(probe) != back[i].Apply(probe) {
			t.Errorf("LF %d behaves differently after round trip", i)
		}
	}
}

func TestMarshalRejectsOpaque(t *testing.T) {
	pred := &PredicateLF{LFName: "p", Class: 0, Fire: func(*dataset.Example) bool { return true }}
	if _, err := MarshalLFs([]LabelFunction{pred}); err == nil {
		t.Error("predicate LF serialized")
	}
	ann := &AnnotationLF{LFName: "a"}
	if _, err := MarshalLFs([]LabelFunction{ann}); err == nil {
		t.Error("annotation LF serialized")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalLFs([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalLFs([]byte(`[{"type":"quantum","class":0}]`)); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := UnmarshalLFs([]byte(`[{"type":"keyword","keyword":"","class":0}]`)); err == nil {
		t.Error("invalid keyword accepted")
	}
}
