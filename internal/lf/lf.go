// Package lf implements label functions (LFs) — the heuristic weak
// supervision sources of the PWS paradigm — together with the vote-matrix
// machinery and the three LF filters of the paper (validity, accuracy,
// redundancy).
//
// Four LF flavours cover every system in the evaluation:
//
//   - KeywordLF: the paper's λ(k,c) — label class c when the passage
//     contains phrase k (a unigram, bigram or trigram).
//   - EntityKeywordLF: the relation-task extension "[A] k [B]" — the
//     phrase must attach to the target entity pair, not to a distractor
//     pair elsewhere in the passage.
//   - PredicateLF: an arbitrary compiled predicate, the shape produced by
//     code-generation baselines (ScriptoriumWS).
//   - AnnotationLF: a per-instance annotation table, the shape produced by
//     exhaustive prompting baselines (PromptedLF).
package lf

import (
	"fmt"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// Abstain is the vote of an inactive label function.
const Abstain = -1

// LabelFunction is a weak supervision source: a heuristic that labels a
// subset of instances and abstains elsewhere.
type LabelFunction interface {
	// Name uniquely identifies the LF within a set.
	Name() string
	// Apply returns a class vote for the example, or Abstain.
	Apply(e *dataset.Example) int
	// TargetClass returns the class this LF votes for, or Abstain when
	// the LF can emit different classes per instance (AnnotationLF).
	TargetClass() int
}

// KeywordLF labels an example as Class when its tokens contain Keyword
// (a canonical space-joined 1-3 gram).
type KeywordLF struct {
	// Keyword is the canonical phrase, as produced by
	// textproc.NormalizePhrase.
	Keyword string
	// Class is the vote emitted when the keyword is present.
	Class int
}

// NewKeywordLF normalizes the raw phrase and constructs a KeywordLF. It
// rejects phrases that are empty after normalization or longer than
// textproc.MaxKeywordLen — the checks the paper's validity filter applies.
func NewKeywordLF(rawPhrase string, class int) (*KeywordLF, error) {
	phrase, n := textproc.NormalizePhrase(rawPhrase)
	if n == 0 {
		return nil, fmt.Errorf("keyword LF: empty phrase %q", rawPhrase)
	}
	if n > textproc.MaxKeywordLen {
		return nil, fmt.Errorf("keyword LF: phrase %q is a %d-gram, max %d", rawPhrase, n, textproc.MaxKeywordLen)
	}
	return &KeywordLF{Keyword: phrase, Class: class}, nil
}

// Name implements LabelFunction.
func (k *KeywordLF) Name() string { return fmt.Sprintf("kw:%q->%d", k.Keyword, k.Class) }

// TargetClass implements LabelFunction.
func (k *KeywordLF) TargetClass() int { return k.Class }

// Apply implements LabelFunction.
func (k *KeywordLF) Apply(e *dataset.Example) int {
	e.EnsureTokens()
	if textproc.ContainsPhrase(e.Tokens, k.Keyword) {
		return k.Class
	}
	return Abstain
}

// DefaultEntityWindow is how many tokens beyond the entity span an
// entity-aware keyword may sit and still count as attached to the pair.
const DefaultEntityWindow = 4

// EntityKeywordLF is the relation-classification extension of KeywordLF:
// "[A] keyword [B]". It votes only when the keyword occurs inside (or
// within Window tokens of) the span between the target entity mentions,
// so a relation phrase belonging to a distractor pair elsewhere in the
// passage does not activate it.
type EntityKeywordLF struct {
	Keyword string
	Class   int
	// Window extends the entity span on both sides; zero means
	// DefaultEntityWindow.
	Window int
}

// NewEntityKeywordLF validates and constructs an EntityKeywordLF.
func NewEntityKeywordLF(rawPhrase string, class int) (*EntityKeywordLF, error) {
	phrase, n := textproc.NormalizePhrase(rawPhrase)
	if n == 0 {
		return nil, fmt.Errorf("entity keyword LF: empty phrase %q", rawPhrase)
	}
	if n > textproc.MaxKeywordLen {
		return nil, fmt.Errorf("entity keyword LF: phrase %q is a %d-gram, max %d", rawPhrase, n, textproc.MaxKeywordLen)
	}
	return &EntityKeywordLF{Keyword: phrase, Class: class}, nil
}

// Name implements LabelFunction.
func (k *EntityKeywordLF) Name() string { return fmt.Sprintf("ekw:%q->%d", k.Keyword, k.Class) }

// TargetClass implements LabelFunction.
func (k *EntityKeywordLF) TargetClass() int { return k.Class }

// Apply implements LabelFunction.
func (k *EntityKeywordLF) Apply(e *dataset.Example) int {
	if e.E1Pos < 0 || e.E2Pos < 0 {
		return Abstain
	}
	e.EnsureTokens()
	w := k.Window
	if w == 0 {
		w = DefaultEntityWindow
	}
	lo, hi := e.E1Pos, e.E2Pos
	if lo > hi {
		lo, hi = hi, lo
	}
	lo -= w
	if lo < 0 {
		lo = 0
	}
	hi += 2 + w // entity mentions are two tokens (first + last name)
	if hi > len(e.Tokens) {
		hi = len(e.Tokens)
	}
	if textproc.ContainsPhrase(e.Tokens[lo:hi], k.Keyword) {
		return k.Class
	}
	return Abstain
}

// PredicateLF wraps an arbitrary predicate under a stable name: the LF
// shape produced by code-generation systems such as ScriptoriumWS, whose
// generated Python programs test properties beyond keyword containment.
type PredicateLF struct {
	// LFName uniquely identifies the predicate.
	LFName string
	// Class is the vote when the predicate fires.
	Class int
	// Fire reports whether the predicate holds for the example.
	Fire func(e *dataset.Example) bool
}

// Name implements LabelFunction.
func (p *PredicateLF) Name() string { return "pred:" + p.LFName }

// TargetClass implements LabelFunction.
func (p *PredicateLF) TargetClass() int { return p.Class }

// Apply implements LabelFunction.
func (p *PredicateLF) Apply(e *dataset.Example) int {
	if p.Fire(e) {
		return p.Class
	}
	return Abstain
}

// AnnotationLF stores one weak label per example, the shape produced by
// PromptedLF-style exhaustive prompting: one LLM template applied to every
// unlabeled instance yields one LF whose votes are the responses.
// Annotations are keyed by example pointer, so the LF is bound to the
// split it was built from and abstains elsewhere.
type AnnotationLF struct {
	LFName string
	Votes  map[*dataset.Example]int
}

// Name implements LabelFunction.
func (a *AnnotationLF) Name() string { return "ann:" + a.LFName }

// TargetClass implements LabelFunction: annotation LFs emit per-instance
// classes, so no single target class exists.
func (a *AnnotationLF) TargetClass() int { return Abstain }

// Apply implements LabelFunction.
func (a *AnnotationLF) Apply(e *dataset.Example) int {
	if v, ok := a.Votes[e]; ok {
		return v
	}
	return Abstain
}

// ApplyAll evaluates every LF on one example and returns the column
// indices and votes of the active ones, in ascending index order — the
// single-example vote row the serving path feeds to a label-model
// predictor. Both slices are nil when every LF abstains.
func ApplyAll(lfs []LabelFunction, e *dataset.Example) (js, votes []int) {
	for j, f := range lfs {
		if v := f.Apply(e); v != Abstain {
			js = append(js, j)
			votes = append(votes, v)
		}
	}
	return js, votes
}
