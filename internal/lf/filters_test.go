package lf

import (
	"testing"

	"datasculpt/internal/dataset"
)

// smallDataset builds a labeled toy spam dataset for filter tests.
func smallDataset() *dataset.Dataset {
	train := []*dataset.Example{
		ex(0, "free money click here now"),
		ex(1, "love this song so much"),
		ex(2, "subscribe to my channel"),
		ex(3, "what a great melody"),
		ex(4, "free gift subscribe fast"),
		ex(5, "nice cover version"),
	}
	for _, e := range train {
		e.Label = dataset.NoLabel
	}
	valid := []*dataset.Example{
		exLabeled(0, "free money now", 1),
		exLabeled(1, "free stuff here", 1),
		exLabeled(2, "subscribe today", 1),
		exLabeled(3, "free hugs for charity", 0), // free misfires once
		exLabeled(4, "lovely song", 0),
		exLabeled(5, "the best melody ever", 0),
	}
	test := []*dataset.Example{
		exLabeled(0, "free ringtones", 1),
		exLabeled(1, "beautiful melody", 0),
	}
	return &dataset.Dataset{
		Name:         "toy",
		Task:         dataset.TextClassification,
		ClassNames:   []string{"ham", "spam"},
		DefaultClass: dataset.NoDefaultClass,
		TrainLabeled: false,
		Train:        train,
		Valid:        valid,
		Test:         test,
	}
}

func TestValidateCandidate(t *testing.T) {
	f, err := ValidateCandidate(dataset.TextClassification, "Free Money", 1, 2)
	if err != nil {
		t.Fatalf("valid candidate rejected: %v", err)
	}
	if _, ok := f.(*KeywordLF); !ok {
		t.Errorf("text task built %T, want *KeywordLF", f)
	}
	r, err := ValidateCandidate(dataset.RelationClassification, "married", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*EntityKeywordLF); !ok {
		t.Errorf("relation task built %T, want *EntityKeywordLF", r)
	}
	if _, err := ValidateCandidate(dataset.TextClassification, "a b c d", 0, 2); err == nil {
		t.Error("4-gram accepted")
	}
	if _, err := ValidateCandidate(dataset.TextClassification, "fine", 2, 2); err == nil {
		t.Error("out-of-range class accepted")
	}
	if _, err := ValidateCandidate(dataset.TextClassification, "fine", -1, 2); err == nil {
		t.Error("negative class accepted")
	}
}

func TestAccuracyFilter(t *testing.T) {
	d := smallDataset()
	f := NewAccuracyFilter(d.Valid, 0.6)

	// "free" is active on 3 valid instances: labels 1,1,0 -> accuracy 2/3 >= 0.6
	freeLF, _ := NewKeywordLF("free", 1)
	ok, acc, active := f.Pass(freeLF)
	if !ok || active != 3 || acc < 0.66 || acc > 0.67 {
		t.Errorf("free: ok=%v acc=%v active=%d", ok, acc, active)
	}

	// "free" voting ham is wrong on 2 of 3 -> pruned
	freeHam, _ := NewKeywordLF("free", 0)
	ok, acc, _ = f.Pass(freeHam)
	if ok {
		t.Errorf("free->ham passed with acc=%v", acc)
	}

	// keyword inactive on every valid instance -> passes vacuously
	rare, _ := NewKeywordLF("zebra", 1)
	ok, _, active = f.Pass(rare)
	if !ok || active != 0 {
		t.Errorf("inactive LF: ok=%v active=%d", ok, active)
	}
}

func TestAccuracyFilterDefaultThreshold(t *testing.T) {
	d := smallDataset()
	f := NewAccuracyFilter(d.Valid, 0)
	if f.Threshold != DefaultAccuracyThreshold {
		t.Errorf("threshold = %v, want default", f.Threshold)
	}
}

func TestRedundancyFilter(t *testing.T) {
	d := smallDataset()
	f := NewRedundancyFilter(d.Train, 0.95)

	freeLF, _ := NewKeywordLF("free", 1)
	if ok, _, _ := f.Pass(freeLF); !ok {
		t.Fatal("first LF rejected as redundant")
	}
	f.Add(freeLF)

	// identical activation pattern & class -> consensus 1.0 -> rejected
	clone, _ := NewKeywordLF("free", 1)
	if ok, closest, cons := f.Pass(clone); ok || cons != 1.0 || closest != freeLF.Name() {
		t.Errorf("identical LF: ok=%v closest=%q cons=%v", ok, closest, cons)
	}

	// same activations but opposite class -> zero agreement -> passes
	freeHam, _ := NewKeywordLF("free", 0)
	if ok, _, cons := f.Pass(freeHam); !ok || cons != 0 {
		t.Errorf("opposite-class LF: ok=%v cons=%v", ok, cons)
	}

	// different keyword, different activations -> passes
	subLF, _ := NewKeywordLF("subscribe", 1)
	if ok, _, _ := f.Pass(subLF); !ok {
		t.Error("non-overlapping LF rejected")
	}
}

func TestFilterChainAllFilters(t *testing.T) {
	d := smallDataset()
	chain := NewFilterChain(d, AllFilters())

	if f, reason := chain.Offer("free", 1); f == nil {
		t.Fatalf("good candidate rejected: %s", reason)
	}
	if _, reason := chain.Offer("free", 1); reason != RejectDuplicate {
		t.Errorf("duplicate reason = %s", reason)
	}
	if _, reason := chain.Offer("a b c d", 1); reason != RejectInvalid {
		t.Errorf("invalid reason = %s", reason)
	}
	if _, reason := chain.Offer("free", 0); reason != RejectInaccurate {
		t.Errorf("inaccurate reason = %s", reason)
	}
	if f, _ := chain.Offer("subscribe", 1); f == nil {
		t.Error("second good candidate rejected")
	}
	if got := len(chain.Accepted()); got != 2 {
		t.Errorf("accepted = %d, want 2", got)
	}
	rej := chain.Rejections()
	if rej[RejectDuplicate] != 1 || rej[RejectInvalid] != 1 || rej[RejectInaccurate] != 1 {
		t.Errorf("rejections = %v", rej)
	}
}

func TestFilterChainNoAccuracy(t *testing.T) {
	d := smallDataset()
	chain := NewFilterChain(d, FilterConfig{UseAccuracy: false, UseRedundancy: true})
	// the inaccurate candidate now passes
	if f, reason := chain.Offer("free", 0); f == nil {
		t.Errorf("no-accuracy chain rejected candidate: %s", reason)
	}
}

func TestFilterChainNoRedundancy(t *testing.T) {
	d := smallDataset()
	chain := NewFilterChain(d, FilterConfig{UseAccuracy: true, UseRedundancy: false})
	if f, _ := chain.Offer("free", 1); f == nil {
		t.Fatal("first candidate rejected")
	}
	// a same-activation same-class candidate with a distinct name passes
	// when redundancy is off ("free money" activates on the same train doc)
	if f, reason := chain.Offer("free money", 1); f == nil {
		t.Errorf("no-redundancy chain rejected near-duplicate: %s", reason)
	}
}

func TestFilterChainRedundantReason(t *testing.T) {
	d := smallDataset()
	chain := NewFilterChain(d, AllFilters())
	if f, _ := chain.Offer("free", 1); f == nil {
		t.Fatal("first candidate rejected")
	}
	// "free money" votes spam on exactly the same train docs as "free"?
	// "free" hits docs 0 and 4; "free money" only doc 0 -> consensus 0.5,
	// passes. Use "click here" vs "click" style instead: craft exact overlap.
	if _, reason := chain.Offer("money click", 1); reason == RejectRedundant {
		t.Skip("unexpected redundancy; dataset too small for this check")
	}
}
