package lf

import (
	"fmt"

	"datasculpt/internal/dataset"
	"datasculpt/internal/par"
)

// VoteMatrix holds the votes of m label functions over n examples. Two
// representations are kept per LF column: a dense int8 slice (class
// indices are tiny; Agnews at full scale is 96k × ~300 LFs, which fits in
// ~29MB this way) for random access, and the sparse active list — the
// ascending document ids the LF votes on, with their votes — which is
// what keyword LFs naturally produce and what makes every statistic and
// the label model's E-step O(nnz) instead of O(n·m).
//
// The matrix is append-only: AppendLFs grows it by evaluating only the
// new columns, which is how the pipeline's evaluator amortizes matrix
// construction across iterations (the LF set only ever grows during a
// run).
// With EnableSpill the matrix becomes memory-bounded: dense columns are
// not built, sparse columns are evicted LRU to an unlinked temp file once
// resident bytes exceed the budget, and accesses fault them back in
// transparently (see spill.go).
type VoteMatrix struct {
	n, m  int
	cols  [][]int8
	names []string
	// active[j] lists the ascending doc ids where cols[j] != Abstain;
	// activeVotes[j] holds the aligned votes. In spill mode an evicted
	// column has active[j] == nil and lives in the spill file.
	active      [][]int32
	activeVotes [][]int8
	// counts[j] is len(active[j]) recorded at append time, valid even
	// while the column is evicted.
	counts []int32

	spill *spillState // nil unless EnableSpill was called
}

// NewVoteMatrix returns an empty (zero-LF) matrix over n examples; grow
// it with AppendLFs.
func NewVoteMatrix(n int) *VoteMatrix {
	return &VoteMatrix{n: n}
}

// BuildVoteMatrix evaluates every LF over the indexed split sequentially.
// It is BuildVoteMatrixParallel with one worker.
func BuildVoteMatrix(ix *Index, lfs []LabelFunction) *VoteMatrix {
	return BuildVoteMatrixParallel(ix, lfs, 1)
}

// BuildVoteMatrixParallel evaluates every LF over the indexed split,
// fanning column evaluation across at most workers goroutines (<= 1 is
// sequential; columns are independent, so the result is identical for
// every worker count).
func BuildVoteMatrixParallel(ix *Index, lfs []LabelFunction, workers int) *VoteMatrix {
	vm := NewVoteMatrix(ix.Size())
	vm.AppendLFs(ix, lfs, workers)
	return vm
}

// AppendLFs appends one evaluated column per LF, fanning evaluation over
// at most workers goroutines. Existing columns are untouched — the
// incremental path behind the pipeline's per-iteration re-aggregation.
// It returns the number of columns added.
func (vm *VoteMatrix) AppendLFs(ix *Index, lfs []LabelFunction, workers int) int {
	if ix.Size() != vm.n {
		panic(fmt.Sprintf("lf: appending over a split of %d examples to a %d-example matrix", ix.Size(), vm.n))
	}
	if len(lfs) == 0 {
		return 0
	}
	base := vm.m
	vm.cols = append(vm.cols, make([][]int8, len(lfs))...)
	vm.names = append(vm.names, make([]string, len(lfs))...)
	vm.active = append(vm.active, make([][]int32, len(lfs))...)
	vm.activeVotes = append(vm.activeVotes, make([][]int8, len(lfs))...)
	vm.counts = append(vm.counts, make([]int32, len(lfs))...)
	split := ix.Split()
	spilling := vm.spill != nil
	// Dynamic scheduling with a small grain: column costs are wildly
	// uneven (a rare keyword touches a handful of postings, a generic
	// one thousands). Each index writes only its own column slots.
	par.For(workers, len(lfs), 2, func(t int) {
		f := lfs[t]
		// In spill mode the dense column is never built: it costs n bytes
		// per LF regardless of coverage, which is exactly the memory the
		// budget exists to bound. Random access degrades to binary search.
		var col []int8
		if !spilling {
			col = make([]int8, vm.n)
			for i := range col {
				col[i] = Abstain
			}
		}
		// ActiveDocs may return a posting list owned by the index, so the
		// kept ids are copied rather than filtered in place.
		ids := ix.ActiveDocs(f)
		votes := make([]int8, 0, len(ids))
		kept := make([]int32, 0, len(ids))
		for _, id := range ids {
			v := int8(f.Apply(split[id]))
			if v == Abstain {
				continue // defensive: ActiveDocs should pre-filter
			}
			if col != nil {
				col[id] = v
			}
			kept = append(kept, id)
			votes = append(votes, v)
		}
		j := base + t
		vm.cols[j] = col
		vm.names[j] = f.Name()
		vm.active[j] = kept
		vm.activeVotes[j] = votes
		vm.counts[j] = int32(len(kept))
	})
	vm.m += len(lfs)
	if spilling {
		vm.spillAdmitNew(base)
	}
	return len(lfs)
}

// NumExamples returns n.
func (vm *VoteMatrix) NumExamples() int { return vm.n }

// NumLFs returns m.
func (vm *VoteMatrix) NumLFs() int { return vm.m }

// Vote returns the vote of LF j on example i (Abstain when inactive).
// In spill mode this is a binary search over the sparse column.
func (vm *VoteMatrix) Vote(i, j int) int {
	if vm.spill != nil {
		return vm.sparseVote(i, j)
	}
	return int(vm.cols[j][i])
}

// Row copies example i's votes into dst (length m) and returns it;
// a nil dst allocates.
func (vm *VoteMatrix) Row(i int, dst []int) []int {
	if dst == nil {
		dst = make([]int, vm.m)
	}
	for j := 0; j < vm.m; j++ {
		dst[j] = vm.Vote(i, j)
	}
	return dst
}

// Active returns LF j's sparse column: the ascending document ids it
// votes on and the aligned votes (shared storage; callers must not
// mutate). This is the O(active) view the label models iterate. In spill
// mode an evicted column is faulted back in transparently; the returned
// slices stay valid (immutable) even if the column is evicted again.
func (vm *VoteMatrix) Active(j int) (ids []int32, votes []int8) {
	return vm.activeCol(j)
}

// Coverage returns the fraction of examples on which LF j is active —
// the "LF Cov." statistic of Table 2.
func (vm *VoteMatrix) Coverage(j int) float64 {
	if vm.n == 0 {
		return 0
	}
	return float64(vm.activeLen(j)) / float64(vm.n)
}

// Stats is the single-pass summary of a vote matrix: the Table 2
// aggregate statistics plus the covered-example count, all computed in
// one O(nnz) sweep over the sparse columns instead of the repeated
// O(n·m) dense scans the per-statistic accessors imply.
type Stats struct {
	// MeanCoverage averages per-LF coverage ("LF Cov.").
	MeanCoverage float64
	// TotalCoverage is the fraction of examples covered by any LF
	// ("Total Cov."); CoveredCount is the absolute number.
	TotalCoverage float64
	CoveredCount  int
	// MeanLFAccuracy averages LF accuracy over LFs active on at least
	// one labeled example ("LF Acc."); AccuracyKnown is false when gold
	// was nil or no LF qualifies.
	MeanLFAccuracy float64
	AccuracyKnown  bool
}

// ComputeStats sweeps the sparse columns once. gold may be nil (accuracy
// statistics are skipped); workers bounds the per-LF fan-out (<= 1 is
// sequential; per-LF partials are written to per-index slots and reduced
// in column order, so the result is identical for every worker count).
func (vm *VoteMatrix) ComputeStats(gold []int, workers int) Stats {
	var s Stats
	if vm.n == 0 {
		return s
	}
	if gold != nil && len(gold) != vm.n {
		panic(fmt.Sprintf("lf: gold length %d != examples %d", len(gold), vm.n))
	}
	type lfStat struct {
		active  int // docs voted on
		graded  int // of those, with known gold
		correct int
	}
	perLF := make([]lfStat, vm.m)
	par.Chunks(workers, vm.m, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			st := lfStat{active: vm.activeLen(j)}
			if gold != nil {
				ids, votes := vm.activeCol(j)
				for t, id := range ids {
					if gold[id] == dataset.NoLabel {
						continue
					}
					st.graded++
					if int(votes[t]) == gold[id] {
						st.correct++
					}
				}
			}
			perLF[j] = st
		}
	})
	// Reductions in column order: identical for every worker count.
	covered := make([]bool, vm.n)
	var covSum, accSum float64
	graded := 0
	for j, st := range perLF {
		covSum += float64(st.active) / float64(vm.n)
		if st.graded > 0 {
			accSum += float64(st.correct) / float64(st.graded)
			graded++
		}
		ids, _ := vm.activeCol(j)
		for _, id := range ids {
			covered[id] = true
		}
	}
	for _, b := range covered {
		if b {
			s.CoveredCount++
		}
	}
	if vm.m > 0 {
		s.MeanCoverage = covSum / float64(vm.m)
	}
	s.TotalCoverage = float64(s.CoveredCount) / float64(vm.n)
	if graded > 0 {
		s.MeanLFAccuracy = accSum / float64(graded)
		s.AccuracyKnown = true
	}
	return s
}

// MeanCoverage averages Coverage over all LFs.
func (vm *VoteMatrix) MeanCoverage() float64 {
	if vm.m == 0 {
		return 0
	}
	return vm.ComputeStats(nil, 1).MeanCoverage
}

// Covered reports, per example, whether at least one LF is active.
func (vm *VoteMatrix) Covered() []bool {
	out := make([]bool, vm.n)
	for j := 0; j < vm.m; j++ {
		ids, _ := vm.activeCol(j)
		for _, id := range ids {
			out[id] = true
		}
	}
	return out
}

// TotalCoverage returns the fraction of examples covered by any LF — the
// "Total Cov." statistic of Table 2.
func (vm *VoteMatrix) TotalCoverage() float64 {
	if vm.n == 0 {
		return 0
	}
	return vm.ComputeStats(nil, 1).TotalCoverage
}

// LFAccuracy returns the accuracy of LF j on the examples where it is
// active and the gold label is known, together with the number of such
// examples. Examples with dataset.NoLabel gold are skipped.
func (vm *VoteMatrix) LFAccuracy(j int, gold []int) (acc float64, active int) {
	if len(gold) != vm.n {
		panic(fmt.Sprintf("lf: gold length %d != examples %d", len(gold), vm.n))
	}
	correct := 0
	ids, votes := vm.activeCol(j)
	for t, id := range ids {
		if gold[id] == dataset.NoLabel {
			continue
		}
		active++
		if int(votes[t]) == gold[id] {
			correct++
		}
	}
	if active == 0 {
		return 0, 0
	}
	return float64(correct) / float64(active), active
}

// MeanLFAccuracy averages LF accuracy over LFs that are active on at
// least one labeled example — the "LF Acc." statistic of Table 2. The
// boolean result is false when no LF qualifies (e.g. an unlabeled split).
func (vm *VoteMatrix) MeanLFAccuracy(gold []int) (float64, bool) {
	s := vm.ComputeStats(gold, 1)
	return s.MeanLFAccuracy, s.AccuracyKnown
}

// MajorityVotes returns, per example, the plurality class among active
// votes (ties broken toward the lowest class), or Abstain for uncovered
// examples. Used for quick diagnostics and the majority-vote label model.
// The sweep is O(nnz) over the sparse columns (plus an O(n·numClasses)
// tally), so it never touches dense storage and works in spill mode.
func (vm *VoteMatrix) MajorityVotes(numClasses int) []int {
	out := make([]int, vm.n)
	counts := make([]int32, vm.n*numClasses)
	covered := make([]bool, vm.n)
	for j := 0; j < vm.m; j++ {
		ids, votes := vm.activeCol(j)
		for t, id := range ids {
			counts[int(id)*numClasses+int(votes[t])]++
			covered[id] = true
		}
	}
	for i := 0; i < vm.n; i++ {
		if !covered[i] {
			out[i] = Abstain
			continue
		}
		base := i * numClasses
		best := 0
		for c := 1; c < numClasses; c++ {
			if counts[base+c] > counts[base+best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// Consensus computes the agreement ratio of two vote columns: the number
// of examples where both are active with equal votes, divided by the
// number where either is active (intersection-over-union of agreeing
// activations). This is the redundancy metric of the paper's filter.
func Consensus(a, b []int8) float64 {
	if len(a) != len(b) {
		panic("lf: consensus over unequal columns")
	}
	inter, union := 0, 0
	for i := range a {
		av, bv := a[i], b[i]
		if av == Abstain && bv == Abstain {
			continue
		}
		union++
		if av != Abstain && av == bv {
			inter++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Column exposes the raw votes of LF j (shared storage; callers must not
// mutate). In spill mode there is no dense storage, so the column is
// materialized per call — an O(n) allocation; sparse consumers should
// use Active instead.
func (vm *VoteMatrix) Column(j int) []int8 {
	if vm.spill == nil {
		return vm.cols[j]
	}
	col := make([]int8, vm.n)
	for i := range col {
		col[i] = Abstain
	}
	ids, votes := vm.activeCol(j)
	for t, id := range ids {
		col[id] = votes[t]
	}
	return col
}

// Names returns the LF names in column order (shared storage).
func (vm *VoteMatrix) Names() []string { return vm.names }
