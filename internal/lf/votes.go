package lf

import (
	"fmt"

	"datasculpt/internal/dataset"
)

// VoteMatrix holds the votes of m label functions over n examples in
// column-major int8 storage (class indices are tiny; Agnews at full scale
// is 96k × ~300 LFs, which fits in ~29MB this way).
type VoteMatrix struct {
	n, m  int
	cols  [][]int8
	names []string
}

// BuildVoteMatrix evaluates every LF over the indexed split.
func BuildVoteMatrix(ix *Index, lfs []LabelFunction) *VoteMatrix {
	vm := &VoteMatrix{
		n:     ix.Size(),
		m:     len(lfs),
		cols:  make([][]int8, len(lfs)),
		names: make([]string, len(lfs)),
	}
	split := ix.Split()
	for j, f := range lfs {
		col := make([]int8, vm.n)
		for i := range col {
			col[i] = Abstain
		}
		for _, id := range ix.ActiveDocs(f) {
			col[id] = int8(f.Apply(split[id]))
		}
		vm.cols[j] = col
		vm.names[j] = f.Name()
	}
	return vm
}

// NumExamples returns n.
func (vm *VoteMatrix) NumExamples() int { return vm.n }

// NumLFs returns m.
func (vm *VoteMatrix) NumLFs() int { return vm.m }

// Vote returns the vote of LF j on example i (Abstain when inactive).
func (vm *VoteMatrix) Vote(i, j int) int { return int(vm.cols[j][i]) }

// Row copies example i's votes into dst (length m) and returns it;
// a nil dst allocates.
func (vm *VoteMatrix) Row(i int, dst []int) []int {
	if dst == nil {
		dst = make([]int, vm.m)
	}
	for j := 0; j < vm.m; j++ {
		dst[j] = int(vm.cols[j][i])
	}
	return dst
}

// Coverage returns the fraction of examples on which LF j is active —
// the "LF Cov." statistic of Table 2.
func (vm *VoteMatrix) Coverage(j int) float64 {
	if vm.n == 0 {
		return 0
	}
	active := 0
	for _, v := range vm.cols[j] {
		if v != Abstain {
			active++
		}
	}
	return float64(active) / float64(vm.n)
}

// MeanCoverage averages Coverage over all LFs.
func (vm *VoteMatrix) MeanCoverage() float64 {
	if vm.m == 0 {
		return 0
	}
	var s float64
	for j := 0; j < vm.m; j++ {
		s += vm.Coverage(j)
	}
	return s / float64(vm.m)
}

// Covered reports, per example, whether at least one LF is active.
func (vm *VoteMatrix) Covered() []bool {
	out := make([]bool, vm.n)
	for j := 0; j < vm.m; j++ {
		for i, v := range vm.cols[j] {
			if v != Abstain {
				out[i] = true
			}
		}
	}
	return out
}

// TotalCoverage returns the fraction of examples covered by any LF — the
// "Total Cov." statistic of Table 2.
func (vm *VoteMatrix) TotalCoverage() float64 {
	if vm.n == 0 {
		return 0
	}
	covered := vm.Covered()
	c := 0
	for _, b := range covered {
		if b {
			c++
		}
	}
	return float64(c) / float64(vm.n)
}

// LFAccuracy returns the accuracy of LF j on the examples where it is
// active and the gold label is known, together with the number of such
// examples. Examples with dataset.NoLabel gold are skipped.
func (vm *VoteMatrix) LFAccuracy(j int, gold []int) (acc float64, active int) {
	if len(gold) != vm.n {
		panic(fmt.Sprintf("lf: gold length %d != examples %d", len(gold), vm.n))
	}
	correct := 0
	for i, v := range vm.cols[j] {
		if v == Abstain || gold[i] == dataset.NoLabel {
			continue
		}
		active++
		if int(v) == gold[i] {
			correct++
		}
	}
	if active == 0 {
		return 0, 0
	}
	return float64(correct) / float64(active), active
}

// MeanLFAccuracy averages LF accuracy over LFs that are active on at
// least one labeled example — the "LF Acc." statistic of Table 2. The
// boolean result is false when no LF qualifies (e.g. an unlabeled split).
func (vm *VoteMatrix) MeanLFAccuracy(gold []int) (float64, bool) {
	var s float64
	count := 0
	for j := 0; j < vm.m; j++ {
		acc, active := vm.LFAccuracy(j, gold)
		if active == 0 {
			continue
		}
		s += acc
		count++
	}
	if count == 0 {
		return 0, false
	}
	return s / float64(count), true
}

// MajorityVotes returns, per example, the plurality class among active
// votes (ties broken toward the lowest class), or Abstain for uncovered
// examples. Used for quick diagnostics and the majority-vote label model.
func (vm *VoteMatrix) MajorityVotes(numClasses int) []int {
	out := make([]int, vm.n)
	counts := make([]int, numClasses)
	for i := 0; i < vm.n; i++ {
		for c := range counts {
			counts[c] = 0
		}
		any := false
		for j := 0; j < vm.m; j++ {
			v := vm.cols[j][i]
			if v == Abstain {
				continue
			}
			counts[v]++
			any = true
		}
		if !any {
			out[i] = Abstain
			continue
		}
		best := 0
		for c := 1; c < numClasses; c++ {
			if counts[c] > counts[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// Consensus computes the agreement ratio of two vote columns: the number
// of examples where both are active with equal votes, divided by the
// number where either is active (intersection-over-union of agreeing
// activations). This is the redundancy metric of the paper's filter.
func Consensus(a, b []int8) float64 {
	if len(a) != len(b) {
		panic("lf: consensus over unequal columns")
	}
	inter, union := 0, 0
	for i := range a {
		av, bv := a[i], b[i]
		if av == Abstain && bv == Abstain {
			continue
		}
		union++
		if av != Abstain && av == bv {
			inter++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Column exposes the raw votes of LF j (shared storage; callers must not
// mutate).
func (vm *VoteMatrix) Column(j int) []int8 { return vm.cols[j] }

// Names returns the LF names in column order (shared storage).
func (vm *VoteMatrix) Names() []string { return vm.names }
