package lf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

func ex(id int, text string) *dataset.Example {
	e := &dataset.Example{ID: id, Text: text, E1Pos: -1, E2Pos: -1}
	e.EnsureTokens()
	return e
}

func exLabeled(id int, text string, label int) *dataset.Example {
	e := ex(id, text)
	e.Label = label
	return e
}

func TestKeywordLF(t *testing.T) {
	f, err := NewKeywordLF("Check OUT", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Keyword != "check out" {
		t.Errorf("normalized keyword = %q", f.Keyword)
	}
	if got := f.Apply(ex(0, "please check out my channel")); got != 1 {
		t.Errorf("Apply on match = %d, want 1", got)
	}
	if got := f.Apply(ex(1, "checking it out later")); got != Abstain {
		t.Errorf("Apply on non-match = %d, want abstain", got)
	}
	if f.TargetClass() != 1 {
		t.Error("TargetClass != 1")
	}
}

func TestNewKeywordLFValidation(t *testing.T) {
	if _, err := NewKeywordLF("", 0); err == nil {
		t.Error("empty keyword accepted")
	}
	if _, err := NewKeywordLF("!!!", 0); err == nil {
		t.Error("punctuation-only keyword accepted")
	}
	if _, err := NewKeywordLF("one two three four", 0); err == nil {
		t.Error("4-gram accepted")
	}
}

func TestEntityKeywordLF(t *testing.T) {
	f, err := NewEntityKeywordLF("married", 1)
	if err != nil {
		t.Fatal(err)
	}
	// keyword between target entities -> active
	e := &dataset.Example{
		Text:    "yesterday john smith married mary jones in town",
		Entity1: "john smith",
		Entity2: "mary jones",
		E1Pos:   1,
		E2Pos:   4,
	}
	e.EnsureTokens()
	if got := f.Apply(e); got != 1 {
		t.Errorf("in-window keyword vote = %d, want 1", got)
	}
	// keyword far outside the entity window -> abstain
	far := &dataset.Example{
		Text: "john smith met mary jones at the office while later that evening " +
			"in a distant city anna brown married peter king",
		Entity1: "john smith",
		Entity2: "mary jones",
		E1Pos:   0,
		E2Pos:   3,
	}
	far.EnsureTokens()
	if got := f.Apply(far); got != Abstain {
		t.Errorf("distractor keyword vote = %d, want abstain", got)
	}
	// text-classification example (no entities) -> abstain
	if got := f.Apply(ex(0, "they married last year")); got != Abstain {
		t.Errorf("no-entity vote = %d, want abstain", got)
	}
}

func TestPredicateLF(t *testing.T) {
	f := &PredicateLF{
		LFName: "long-text",
		Class:  1,
		Fire:   func(e *dataset.Example) bool { return len(e.Tokens) > 5 },
	}
	if got := f.Apply(ex(0, "one two three four five six seven")); got != 1 {
		t.Errorf("predicate fire = %d", got)
	}
	if got := f.Apply(ex(1, "short text")); got != Abstain {
		t.Errorf("predicate no-fire = %d", got)
	}
	if !strings.HasPrefix(f.Name(), "pred:") {
		t.Errorf("name = %q", f.Name())
	}
}

func TestAnnotationLF(t *testing.T) {
	a, b := ex(0, "first"), ex(1, "second")
	f := &AnnotationLF{LFName: "tmpl-0", Votes: map[*dataset.Example]int{a: 1}}
	if got := f.Apply(a); got != 1 {
		t.Errorf("annotated vote = %d", got)
	}
	if got := f.Apply(b); got != Abstain {
		t.Errorf("unannotated vote = %d", got)
	}
	if f.TargetClass() != Abstain {
		t.Error("annotation LF should have no single target class")
	}
}

func TestIndexDocs(t *testing.T) {
	split := []*dataset.Example{
		ex(0, "check out my channel"),
		ex(1, "great song love it"),
		ex(2, "check the description out"),
		ex(3, "check out these covers"),
	}
	ix := NewIndex(split)
	if got := ix.Docs("check out"); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Docs(check out) = %v, want [0 3]", got)
	}
	if got := ix.Docs("check"); len(got) != 3 {
		t.Errorf("Docs(check) = %v, want 3 docs", got)
	}
	if got := ix.Docs("absent phrase"); got != nil {
		t.Errorf("Docs(absent) = %v", got)
	}
	if got := ix.Docs(""); got != nil {
		t.Errorf("Docs(empty) = %v", got)
	}
	if ix.DocFreq("check") != 3 {
		t.Errorf("DocFreq(check) = %d", ix.DocFreq("check"))
	}
}

// TestIndexCountDocsMatchesDocs: the allocation-free accessors must
// agree with Docs on count, membership and order for single- and
// multi-word phrases, including absent and empty ones.
func TestIndexCountDocsMatchesDocs(t *testing.T) {
	split := []*dataset.Example{
		ex(0, "check out my channel"),
		ex(1, "great song love it"),
		ex(2, "check the description out"),
		ex(3, "check out these covers"),
	}
	ix := NewIndex(split)
	for _, phrase := range []string{"check", "check out", "out", "absent phrase", "", "great song love"} {
		want := ix.Docs(phrase)
		if got := ix.CountDocs(phrase); got != len(want) {
			t.Errorf("CountDocs(%q) = %d, want %d", phrase, got, len(want))
		}
		var walked []int32
		ix.ForEachDoc(phrase, func(id int32) { walked = append(walked, id) })
		if len(walked) != len(want) {
			t.Fatalf("ForEachDoc(%q) visited %v, want %v", phrase, walked, want)
		}
		for i := range want {
			if walked[i] != want[i] {
				t.Errorf("ForEachDoc(%q)[%d] = %d, want %d", phrase, i, walked[i], want[i])
			}
		}
	}
}

func TestIndexMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vocab := []string{"spam", "free", "win", "song", "love", "channel", "click", "video"}
	split := make([]*dataset.Example, 80)
	for i := range split {
		n := 1 + rng.Intn(12)
		words := make([]string, n)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		split[i] = ex(i, strings.Join(words, " "))
	}
	ix := NewIndex(split)
	prop := func(a, b uint8) bool {
		phrase := vocab[int(a)%len(vocab)] + " " + vocab[int(b)%len(vocab)]
		fast := ix.Docs(phrase)
		var slow []int32
		for i, e := range split {
			if textproc.ContainsPhrase(e.Tokens, phrase) {
				slow = append(slow, int32(i))
			}
		}
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVoteMatrixStats(t *testing.T) {
	split := []*dataset.Example{
		exLabeled(0, "free money click here", 1),
		exLabeled(1, "love this song", 0),
		exLabeled(2, "free tickets for the show", 0), // "free" misfires here
		exLabeled(3, "plain message without signal", 0),
	}
	ix := NewIndex(split)
	spamLF, _ := NewKeywordLF("free", 1)
	hamLF, _ := NewKeywordLF("love this song", 0)
	vm := BuildVoteMatrix(ix, []LabelFunction{spamLF, hamLF})

	if vm.NumExamples() != 4 || vm.NumLFs() != 2 {
		t.Fatalf("shape = %dx%d", vm.NumExamples(), vm.NumLFs())
	}
	if got := vm.Coverage(0); got != 0.5 {
		t.Errorf("coverage(free) = %v, want 0.5", got)
	}
	if got := vm.Coverage(1); got != 0.25 {
		t.Errorf("coverage(love this song) = %v, want 0.25", got)
	}
	if got := vm.TotalCoverage(); got != 0.75 {
		t.Errorf("total coverage = %v, want 0.75", got)
	}
	gold := dataset.Labels(split)
	acc, active := vm.LFAccuracy(0, gold)
	if active != 2 || acc != 0.5 {
		t.Errorf("LFAccuracy(free) = %v on %d, want 0.5 on 2", acc, active)
	}
	mean, ok := vm.MeanLFAccuracy(gold)
	if !ok || mean != 0.75 {
		t.Errorf("mean LF accuracy = %v (%v), want 0.75", mean, ok)
	}
	mv := vm.MajorityVotes(2)
	if mv[0] != 1 || mv[1] != 0 || mv[2] != 1 || mv[3] != Abstain {
		t.Errorf("majority votes = %v", mv)
	}
}

func TestVoteMatrixRowAndUnlabeled(t *testing.T) {
	split := []*dataset.Example{
		ex(0, "free stuff"), // unlabeled (NoLabel)
	}
	ix := NewIndex(split)
	f, _ := NewKeywordLF("free", 1)
	vm := BuildVoteMatrix(ix, []LabelFunction{f})
	row := vm.Row(0, nil)
	if len(row) != 1 || row[0] != 1 {
		t.Errorf("row = %v", row)
	}
	if _, ok := vm.MeanLFAccuracy([]int{dataset.NoLabel}); ok {
		t.Error("mean accuracy defined on fully unlabeled split")
	}
}

func TestConsensus(t *testing.T) {
	a := []int8{1, 1, Abstain, Abstain, 0}
	b := []int8{1, Abstain, Abstain, 1, 0}
	// union: idx 0,1,3,4 (=4); agree: idx 0,4 (=2)
	if got := Consensus(a, b); got != 0.5 {
		t.Errorf("consensus = %v, want 0.5", got)
	}
	if got := Consensus([]int8{Abstain}, []int8{Abstain}); got != 0 {
		t.Errorf("all-abstain consensus = %v", got)
	}
	// disagreeing votes never count as intersection
	c := []int8{1}
	d := []int8{0}
	if got := Consensus(c, d); got != 0 {
		t.Errorf("disagreeing consensus = %v", got)
	}
}

func TestConsensusSymmetricProperty(t *testing.T) {
	prop := func(raw []byte) bool {
		n := len(raw)
		a := make([]int8, n)
		b := make([]int8, n)
		for i, r := range raw {
			a[i] = int8(r%3) - 1 // -1..1
			b[i] = int8((r/3)%3) - 1
		}
		s := Consensus(a, b)
		return s == Consensus(b, a) && s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
