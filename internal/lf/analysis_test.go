package lf

import (
	"strings"
	"testing"

	"datasculpt/internal/dataset"
)

func analysisFixture(t *testing.T) (*VoteMatrix, []LabelFunction, []int) {
	t.Helper()
	split := []*dataset.Example{
		exLabeled(0, "free money now", 1),         // spam + free both active, agree
		exLabeled(1, "free hugs for everyone", 0), // free active, wrong
		exLabeled(2, "love this melody", 0),       // melody active
		exLabeled(3, "nothing here", 0),           // uncovered
		exLabeled(4, "free melody download", 1),   // free(1) + melody(0) conflict
	}
	free, _ := NewKeywordLF("free", 1)
	melody, _ := NewKeywordLF("melody", 0)
	money, _ := NewKeywordLF("money", 1)
	lfs := []LabelFunction{free, melody, money}
	ix := NewIndex(split)
	return BuildVoteMatrix(ix, lfs), lfs, dataset.Labels(split)
}

func TestAnalyze(t *testing.T) {
	vm, lfs, gold := analysisFixture(t)
	sums := Analyze(vm, lfs, gold)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	free := byName[lfs[0].Name()]
	if free.Active != 3 || free.Coverage != 0.6 {
		t.Errorf("free coverage: %+v", free)
	}
	// free overlaps with money (doc 0) and melody (doc 4): 2/5
	if free.Overlap != 0.4 {
		t.Errorf("free overlap = %v, want 0.4", free.Overlap)
	}
	// conflict only on doc 4 (melody disagrees): 1/5
	if free.Conflict != 0.2 {
		t.Errorf("free conflict = %v, want 0.2", free.Conflict)
	}
	// accuracy: docs 0,4 correct (label 1), doc 1 wrong -> 2/3
	if !free.AccuracyKnown || free.Correct != 2 || free.Incorrect != 1 {
		t.Errorf("free accuracy: %+v", free)
	}
	melody := byName[lfs[1].Name()]
	// melody: docs 2 (correct) and 4 (incorrect) -> 0.5
	if melody.Accuracy != 0.5 {
		t.Errorf("melody accuracy = %v", melody.Accuracy)
	}
	money := byName[lfs[2].Name()]
	if money.Active != 1 || money.Conflict != 0 || money.Overlap != 0.2 {
		t.Errorf("money: %+v", money)
	}
}

func TestAnalyzeUnlabeled(t *testing.T) {
	vm, lfs, _ := analysisFixture(t)
	sums := Analyze(vm, lfs, nil)
	for _, s := range sums {
		if s.AccuracyKnown {
			t.Errorf("%s has accuracy without gold labels", s.Name)
		}
		if s.Coverage < 0 || s.Coverage > 1 {
			t.Errorf("%s coverage out of range", s.Name)
		}
	}
}

func TestAnalyzeMismatchedPanics(t *testing.T) {
	vm, lfs, gold := analysisFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on LF count mismatch")
		}
	}()
	Analyze(vm, lfs[:1], gold)
}

func TestSortAndFormatSummaries(t *testing.T) {
	vm, lfs, gold := analysisFixture(t)
	sums := Analyze(vm, lfs, gold)
	SortByCoverage(sums)
	for i := 1; i < len(sums); i++ {
		if sums[i-1].Coverage < sums[i].Coverage {
			t.Fatal("not sorted by coverage")
		}
	}
	out := FormatSummaries(sums)
	if !strings.Contains(out, "conflict") || !strings.Contains(out, "free") {
		t.Errorf("format output = %q", out)
	}
	// annotation LFs print * for their class column
	ann := &AnnotationLF{LFName: "t", Votes: nil}
	annSums := Analyze(BuildVoteMatrix(NewIndex([]*dataset.Example{ex(0, "x y")}), []LabelFunction{ann}),
		[]LabelFunction{ann}, nil)
	if got := FormatSummaries(annSums); !strings.Contains(got, "*") {
		t.Errorf("annotation class column = %q", got)
	}
}
