package lf

import (
	"fmt"
	"sort"
	"strings"

	"datasculpt/internal/dataset"
)

// Summary is the per-LF diagnostic record of Analyze — the same view
// Snorkel's LFAnalysis offers: coverage, overlap and conflict rates over
// a split, plus empirical accuracy where gold labels exist. It is what a
// practitioner inspects to decide which LFs to keep, revise or drop.
type Summary struct {
	// Name identifies the LF; Class is its target class (Abstain for
	// per-instance annotation LFs).
	Name  string
	Class int
	// Active is the number of split examples the LF votes on; Coverage
	// the corresponding fraction.
	Active   int
	Coverage float64
	// Overlap is the fraction of examples where this LF votes alongside
	// at least one other LF; Conflict the fraction where at least one
	// co-voting LF disagrees.
	Overlap  float64
	Conflict float64
	// Correct/Incorrect and Accuracy are populated when gold labels are
	// available (AccuracyKnown).
	Correct, Incorrect int
	Accuracy           float64
	AccuracyKnown      bool
}

// Analyze computes per-LF summaries over a built vote matrix. gold may be
// nil (or hold dataset.NoLabel entries) for unlabeled splits; accuracy
// fields are filled only where labels exist.
func Analyze(vm *VoteMatrix, lfs []LabelFunction, gold []int) []Summary {
	if len(lfs) != vm.NumLFs() {
		panic(fmt.Sprintf("lf: %d LFs for a %d-column matrix", len(lfs), vm.NumLFs()))
	}
	n := vm.NumExamples()
	m := vm.NumLFs()
	out := make([]Summary, m)
	for j := range out {
		out[j] = Summary{Name: lfs[j].Name(), Class: lfs[j].TargetClass()}
	}
	if n == 0 {
		return out
	}

	// count active LFs and agreement per example once
	row := make([]int, m)
	for i := 0; i < n; i++ {
		vm.Row(i, row)
		activeCount := 0
		for _, v := range row {
			if v != Abstain {
				activeCount++
			}
		}
		if activeCount == 0 {
			continue
		}
		var g int = dataset.NoLabel
		if gold != nil {
			g = gold[i]
		}
		for j, v := range row {
			if v == Abstain {
				continue
			}
			s := &out[j]
			s.Active++
			if activeCount > 1 {
				s.Overlap++
				for j2, v2 := range row {
					if j2 != j && v2 != Abstain && v2 != v {
						s.Conflict++
						break
					}
				}
			}
			if g != dataset.NoLabel {
				if v == g {
					s.Correct++
				} else {
					s.Incorrect++
				}
			}
		}
	}

	for j := range out {
		s := &out[j]
		s.Coverage = float64(s.Active) / float64(n)
		if s.Active > 0 {
			s.Overlap /= float64(n)
			s.Conflict /= float64(n)
		}
		if labeled := s.Correct + s.Incorrect; labeled > 0 {
			s.Accuracy = float64(s.Correct) / float64(labeled)
			s.AccuracyKnown = true
		}
	}
	return out
}

// SortByCoverage orders summaries by descending coverage (stable on name).
func SortByCoverage(sums []Summary) {
	sort.SliceStable(sums, func(i, j int) bool {
		if sums[i].Coverage != sums[j].Coverage {
			return sums[i].Coverage > sums[j].Coverage
		}
		return sums[i].Name < sums[j].Name
	})
}

// FormatSummaries renders an analysis table.
func FormatSummaries(sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %5s %8s %8s %8s %8s\n",
		"LF", "class", "cov", "overlap", "conflict", "acc")
	for _, s := range sums {
		acc := "-"
		if s.AccuracyKnown {
			acc = fmt.Sprintf("%.3f", s.Accuracy)
		}
		class := fmt.Sprint(s.Class)
		if s.Class == Abstain {
			class = "*"
		}
		fmt.Fprintf(&b, "%-44s %5s %8.4f %8.4f %8.4f %8s\n",
			truncate(s.Name, 44), class, s.Coverage, s.Overlap, s.Conflict, acc)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
