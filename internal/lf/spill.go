package lf

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"datasculpt/internal/obs"
)

// spillBytesPerVote approximates the resident cost of one sparse vote:
// a 4-byte document id plus a 1-byte vote. It is both the budget-
// accounting unit and the on-disk record width.
const spillBytesPerVote = 5

// spillState is the temp-file backing store behind a memory-bounded
// VoteMatrix. Columns are immutable once appended, so each is written to
// the spill file at most once (write-once); eviction of an
// already-written column just drops its resident slices, and fault-in
// reads fresh allocations back — callers that retained slices from an
// earlier Active call keep valid immutable data.
//
// The file is unlinked immediately after creation so it disappears with
// the process no matter how the run ends.
type spillState struct {
	mu     sync.Mutex
	budget int64 // resident sparse bytes allowed
	f      *os.File
	off    int64 // next write offset

	resident int64   // bytes of currently resident sparse columns
	written  []bool  // column has a copy in the file
	woff     []int64 // its offset there
	lastUse  []int64 // logical-clock recency per column
	tick     int64   // the clock

	// lifetime counts, kept locally so SpillStats works without metrics
	nSpills, nReloads int

	spills, reloads *obs.Counter
	residentGauge   *obs.Gauge
	fileGauge       *obs.Gauge
}

// SpillStats is a point-in-time snapshot of the backing store, for tests
// and the scale smoke check.
type SpillStats struct {
	Budget        int64 // configured resident budget, bytes
	ResidentBytes int64 // sparse bytes currently in memory
	FileBytes     int64 // bytes written to the spill file
	SpilledCols   int   // columns currently evicted
	Spills        int   // evictions performed over the matrix lifetime
	Reloads       int   // fault-ins performed over the matrix lifetime
}

// EnableSpill puts the matrix in memory-bounded mode: dense per-column
// storage is disabled for all subsequently appended columns (random
// access degrades to a binary search over the sparse list), and once the
// resident sparse bytes exceed budgetBytes, the least recently used
// columns are evicted to an unlinked temp file in dir ("" = os.TempDir())
// and transparently re-loaded on access. Metrics (may be nil) receives
// eval_votematrix_spill_* series.
//
// It must be called on an empty matrix (before the first AppendLFs) and
// requires budgetBytes > 0. The caller owns the file handle's lifetime
// via Close.
func (vm *VoteMatrix) EnableSpill(budgetBytes int64, dir string, metrics *obs.Registry) error {
	if vm.m != 0 {
		return fmt.Errorf("lf: EnableSpill on a matrix that already has %d columns", vm.m)
	}
	if budgetBytes <= 0 {
		return fmt.Errorf("lf: spill budget must be positive, got %d", budgetBytes)
	}
	f, err := os.CreateTemp(dir, "votematrix-*.spill")
	if err != nil {
		return fmt.Errorf("lf: create spill file: %w", err)
	}
	// Unlink immediately: the kernel reclaims the space when the handle
	// closes, even on a crash.
	os.Remove(f.Name())
	vm.spill = &spillState{
		budget:        budgetBytes,
		f:             f,
		spills:        metrics.Counter("eval_votematrix_spill_columns_total", "vote-matrix columns evicted to the spill file"),
		reloads:       metrics.Counter("eval_votematrix_spill_reloads_total", "vote-matrix columns faulted back in from the spill file"),
		residentGauge: metrics.Gauge("eval_votematrix_spill_resident_bytes", "resident sparse bytes of the spilling vote matrix"),
		fileGauge:     metrics.Gauge("eval_votematrix_spill_file_bytes", "bytes written to the vote-matrix spill file"),
	}
	return nil
}

// Spilling reports whether the matrix runs in memory-bounded mode.
func (vm *VoteMatrix) Spilling() bool { return vm.spill != nil }

// SpillStats snapshots the backing store; the zero value is returned for
// a matrix without spill enabled.
func (vm *VoteMatrix) SpillStats() SpillStats {
	s := vm.spill
	if s == nil {
		return SpillStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SpillStats{
		Budget:        s.budget,
		ResidentBytes: s.resident,
		FileBytes:     s.off,
		Spills:        s.nSpills,
		Reloads:       s.nReloads,
	}
	for j := 0; j < vm.m; j++ {
		if vm.active[j] == nil && vm.counts[j] > 0 {
			st.SpilledCols++
		}
	}
	return st
}

// Close releases the spill file handle (no-op without spill). The matrix
// must not be used afterwards.
func (vm *VoteMatrix) Close() error {
	if vm.spill == nil || vm.spill.f == nil {
		return nil
	}
	err := vm.spill.f.Close()
	vm.spill.f = nil
	return err
}

// activeCol returns column j's sparse view, faulting it in from the
// spill file when evicted. The non-spill path is a direct field read.
func (vm *VoteMatrix) activeCol(j int) ([]int32, []int8) {
	if vm.spill == nil {
		return vm.active[j], vm.activeVotes[j]
	}
	return vm.spillLoad(j)
}

// activeLen returns column j's non-abstain count without faulting it in.
func (vm *VoteMatrix) activeLen(j int) int {
	if vm.spill == nil {
		return len(vm.active[j])
	}
	return int(vm.counts[j])
}

// admitLocked accounts freshly appended or reloaded resident columns and
// evicts down to budget. pin is never evicted (the column the caller is
// about to use); pass -1 to allow any victim.
func (s *spillState) admitLocked(vm *VoteMatrix, addedBytes int64, pin int) {
	s.resident += addedBytes
	for s.resident > s.budget {
		victim, oldest := -1, int64(0)
		for j := 0; j < vm.m; j++ {
			if j == pin || vm.active[j] == nil || vm.counts[j] == 0 {
				continue
			}
			if victim == -1 || s.lastUse[j] < oldest {
				victim, oldest = j, s.lastUse[j]
			}
		}
		if victim == -1 {
			return // only the pinned column remains; budget + one column is the bound
		}
		s.evictLocked(vm, victim)
	}
	s.residentGauge.Set(float64(s.resident))
	s.fileGauge.Set(float64(s.off))
}

// evictLocked writes column j to the file if it has never been written
// and drops its resident slices.
func (s *spillState) evictLocked(vm *VoteMatrix, j int) {
	c := int(vm.counts[j])
	if !s.written[j] {
		buf := make([]byte, c*spillBytesPerVote)
		for t, id := range vm.active[j] {
			binary.LittleEndian.PutUint32(buf[t*4:], uint32(id))
		}
		voteBase := c * 4
		for t, v := range vm.activeVotes[j] {
			buf[voteBase+t] = byte(v)
		}
		if _, err := s.f.WriteAt(buf, s.off); err != nil {
			panic(fmt.Sprintf("lf: spill write: %v", err))
		}
		s.woff[j] = s.off
		s.off += int64(len(buf))
		s.written[j] = true
	}
	vm.active[j] = nil
	vm.activeVotes[j] = nil
	s.resident -= int64(c) * spillBytesPerVote
	s.nSpills++
	s.spills.Inc()
}

// spillLoad returns column j resident, faulting it in when evicted.
func (vm *VoteMatrix) spillLoad(j int) ([]int32, []int8) {
	s := vm.spill
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.lastUse[j] = s.tick
	if vm.active[j] != nil || vm.counts[j] == 0 {
		return vm.active[j], vm.activeVotes[j]
	}
	c := int(vm.counts[j])
	buf := make([]byte, c*spillBytesPerVote)
	if _, err := s.f.ReadAt(buf, s.woff[j]); err != nil {
		panic(fmt.Sprintf("lf: spill read: %v", err))
	}
	ids := make([]int32, c)
	votes := make([]int8, c)
	for t := range ids {
		ids[t] = int32(binary.LittleEndian.Uint32(buf[t*4:]))
	}
	voteBase := c * 4
	for t := range votes {
		votes[t] = int8(buf[voteBase+t])
	}
	vm.active[j] = ids
	vm.activeVotes[j] = votes
	s.nReloads++
	s.reloads.Inc()
	s.admitLocked(vm, int64(c)*spillBytesPerVote, j)
	return ids, votes
}

// spillAdmitNew accounts the columns appended in [base, vm.m) and evicts
// down to budget. Called once per AppendLFs, after the parallel build.
func (vm *VoteMatrix) spillAdmitNew(base int) {
	s := vm.spill
	s.mu.Lock()
	defer s.mu.Unlock()
	var added int64
	for j := base; j < vm.m; j++ {
		s.written = append(s.written, false)
		s.woff = append(s.woff, 0)
		s.tick++
		s.lastUse = append(s.lastUse, s.tick)
		added += int64(vm.counts[j]) * spillBytesPerVote
	}
	s.admitLocked(vm, added, -1)
}

// sparseVote binary-searches column j's active list for document i.
func (vm *VoteMatrix) sparseVote(i, j int) int {
	ids, votes := vm.activeCol(j)
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(ids[mid]) < i:
			lo = mid + 1
		case int(ids[mid]) > i:
			hi = mid
		default:
			return int(votes[mid])
		}
	}
	return int(Abstain)
}
