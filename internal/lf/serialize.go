package lf

import (
	"encoding/json"
	"fmt"
)

// LF sets are serializable so a labeling session's output can be stored,
// versioned and reapplied — the artifact a weak-supervision team actually
// ships. Keyword, entity-keyword and disjunction LFs round-trip;
// PredicateLF (opaque code) and AnnotationLF (bound to a concrete split
// by pointer) are rejected with descriptive errors.

// lfRecord is the JSON form of one LF.
type lfRecord struct {
	Type     string   `json:"type"`
	Keyword  string   `json:"keyword,omitempty"`
	Keywords []string `json:"keywords,omitempty"`
	Class    int      `json:"class"`
	Name     string   `json:"name,omitempty"`
	Window   int      `json:"window,omitempty"`
	Entity   bool     `json:"entity_aware,omitempty"`
}

// JSON type tags.
const (
	typeKeyword       = "keyword"
	typeEntityKeyword = "entity-keyword"
	typeDisjunction   = "disjunction"
)

// MarshalLFs encodes an LF set as JSON.
func MarshalLFs(lfs []LabelFunction) ([]byte, error) {
	records := make([]lfRecord, 0, len(lfs))
	for _, f := range lfs {
		switch t := f.(type) {
		case *KeywordLF:
			records = append(records, lfRecord{Type: typeKeyword, Keyword: t.Keyword, Class: t.Class})
		case *EntityKeywordLF:
			records = append(records, lfRecord{
				Type: typeEntityKeyword, Keyword: t.Keyword, Class: t.Class, Window: t.Window,
			})
		case *DisjunctionLF:
			records = append(records, lfRecord{
				Type: typeDisjunction, Keywords: t.Keywords, Class: t.Class,
				Name: t.LFName, Window: t.Window, Entity: t.EntityAware,
			})
		default:
			return nil, fmt.Errorf("lf: %s (%T) is not serializable", f.Name(), f)
		}
	}
	return json.MarshalIndent(records, "", " ")
}

// UnmarshalLFs decodes an LF set written by MarshalLFs, revalidating
// every keyword.
func UnmarshalLFs(data []byte) ([]LabelFunction, error) {
	var records []lfRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("lf: decoding LF set: %w", err)
	}
	out := make([]LabelFunction, 0, len(records))
	for i, r := range records {
		switch r.Type {
		case typeKeyword:
			f, err := NewKeywordLF(r.Keyword, r.Class)
			if err != nil {
				return nil, fmt.Errorf("lf: record %d: %w", i, err)
			}
			out = append(out, f)
		case typeEntityKeyword:
			f, err := NewEntityKeywordLF(r.Keyword, r.Class)
			if err != nil {
				return nil, fmt.Errorf("lf: record %d: %w", i, err)
			}
			f.Window = r.Window
			out = append(out, f)
		case typeDisjunction:
			f, err := NewDisjunctionLF(r.Name, r.Keywords, r.Class, r.Entity)
			if err != nil {
				return nil, fmt.Errorf("lf: record %d: %w", i, err)
			}
			f.Window = r.Window
			out = append(out, f)
		default:
			return nil, fmt.Errorf("lf: record %d has unknown type %q", i, r.Type)
		}
	}
	return out, nil
}
