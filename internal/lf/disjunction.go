package lf

import (
	"fmt"
	"strings"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// DisjunctionLF votes Class when the example contains any of its
// keywords. This is the shape of broad expert heuristics (the WRENCH
// benchmark's expression-list LFs) and of code-generated programs
// ("if any(k in text for k in [...])"). With EntityAware set, every
// keyword check is window-restricted to the target entity pair, as in
// EntityKeywordLF.
type DisjunctionLF struct {
	// LFName uniquely identifies the LF.
	LFName string
	// Keywords are canonical 1-3 gram phrases.
	Keywords []string
	// Class is the vote when any keyword matches.
	Class int
	// EntityAware restricts matching to the entity window (relation
	// tasks).
	EntityAware bool
	// Window overrides DefaultEntityWindow when positive.
	Window int
}

// NewDisjunctionLF validates and constructs a DisjunctionLF. Keywords are
// normalized; empty or over-long phrases are rejected.
func NewDisjunctionLF(name string, rawKeywords []string, class int, entityAware bool) (*DisjunctionLF, error) {
	if name == "" {
		return nil, fmt.Errorf("disjunction LF: empty name")
	}
	if len(rawKeywords) == 0 {
		return nil, fmt.Errorf("disjunction LF %s: no keywords", name)
	}
	keywords := make([]string, 0, len(rawKeywords))
	for _, raw := range rawKeywords {
		phrase, n := textproc.NormalizePhrase(raw)
		if n == 0 || n > textproc.MaxKeywordLen {
			return nil, fmt.Errorf("disjunction LF %s: keyword %q not a 1-%d gram",
				name, raw, textproc.MaxKeywordLen)
		}
		keywords = append(keywords, phrase)
	}
	return &DisjunctionLF{LFName: name, Keywords: keywords, Class: class, EntityAware: entityAware}, nil
}

// Name implements LabelFunction.
func (d *DisjunctionLF) Name() string {
	return fmt.Sprintf("dis:%s[%s]->%d", d.LFName, strings.Join(d.Keywords, "|"), d.Class)
}

// TargetClass implements LabelFunction.
func (d *DisjunctionLF) TargetClass() int { return d.Class }

// Apply implements LabelFunction.
func (d *DisjunctionLF) Apply(e *dataset.Example) int {
	e.EnsureTokens()
	tokens := e.Tokens
	if d.EntityAware {
		if e.E1Pos < 0 || e.E2Pos < 0 {
			return Abstain
		}
		w := d.Window
		if w <= 0 {
			w = DefaultEntityWindow
		}
		lo, hi := e.E1Pos, e.E2Pos
		if lo > hi {
			lo, hi = hi, lo
		}
		lo -= w
		if lo < 0 {
			lo = 0
		}
		hi += 2 + w
		if hi > len(tokens) {
			hi = len(tokens)
		}
		tokens = tokens[lo:hi]
	}
	for _, kw := range d.Keywords {
		if textproc.ContainsPhrase(tokens, kw) {
			return d.Class
		}
	}
	return Abstain
}
