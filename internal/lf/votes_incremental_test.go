package lf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"datasculpt/internal/dataset"
)

func randomSplit(rng *rand.Rand, vocab []string, n int) []*dataset.Example {
	split := make([]*dataset.Example, n)
	for i := range split {
		var words []string
		for w := 0; w < 2+rng.Intn(10); w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		e := &dataset.Example{ID: i, Text: strings.Join(words, " "), E1Pos: -1, E2Pos: -1}
		e.EnsureTokens()
		split[i] = e
	}
	return split
}

func randomLFs(t *testing.T, rng *rand.Rand, vocab []string, m int) []LabelFunction {
	t.Helper()
	lfs := make([]LabelFunction, 0, m)
	for len(lfs) < m {
		words := 1 + rng.Intn(2)
		parts := make([]string, words)
		for w := range parts {
			parts[w] = vocab[rng.Intn(len(vocab))]
		}
		phrase := strings.Join(parts, " ")
		class := rng.Intn(3)
		var (
			f   LabelFunction
			err error
		)
		switch rng.Intn(3) {
		case 0:
			f, err = NewKeywordLF(phrase, class)
		case 1:
			f, err = NewEntityKeywordLF(phrase, class)
		default:
			f, err = NewDisjunctionLF("p", []string{phrase, vocab[rng.Intn(len(vocab))]}, class, rng.Intn(2) == 0)
		}
		if err != nil {
			t.Fatalf("building LF: %v", err)
		}
		lfs = append(lfs, f)
	}
	return lfs
}

func matricesEqual(t *testing.T, got, want *VoteMatrix) bool {
	t.Helper()
	if got.NumExamples() != want.NumExamples() || got.NumLFs() != want.NumLFs() {
		t.Logf("shape %dx%d != %dx%d", got.NumExamples(), got.NumLFs(), want.NumExamples(), want.NumLFs())
		return false
	}
	for j := 0; j < want.NumLFs(); j++ {
		if got.Names()[j] != want.Names()[j] {
			t.Logf("name[%d] %q != %q", j, got.Names()[j], want.Names()[j])
			return false
		}
		gc, wc := got.Column(j), want.Column(j)
		for i := range wc {
			if gc[i] != wc[i] {
				t.Logf("vote[%d][%d] %d != %d", i, j, gc[i], wc[i])
				return false
			}
		}
		gids, gvotes := got.Active(j)
		wids, wvotes := want.Active(j)
		if len(gids) != len(wids) {
			t.Logf("active[%d] %d ids != %d", j, len(gids), len(wids))
			return false
		}
		for t2 := range wids {
			if gids[t2] != wids[t2] || gvotes[t2] != wvotes[t2] {
				t.Logf("active[%d][%d] (%d,%d) != (%d,%d)", j, t2, gids[t2], gvotes[t2], wids[t2], wvotes[t2])
				return false
			}
		}
	}
	return true
}

// TestIncrementalAppendMatchesScratchProperty is the invariant the
// evaluator's vote-matrix cache stands on: growing a matrix by appending
// LFs in arbitrary batch sizes (one at a time included) yields exactly
// the matrix BuildVoteMatrix produces from scratch, for any worker
// count. Run under -race this also stresses the parallel column
// evaluation in AppendLFs.
func TestIncrementalAppendMatchesScratchProperty(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "free", "cash",
		"prize", "song", "winner", "channel"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		split := randomSplit(rng, vocab, 20+rng.Intn(60))
		lfs := randomLFs(t, rng, vocab, 1+rng.Intn(12))
		ix := NewIndex(split)
		want := BuildVoteMatrix(ix, lfs)

		for _, workers := range []int{1, 4} {
			// One LF at a time — the per-iteration pipeline shape.
			one := NewVoteMatrix(ix.Size())
			for _, f := range lfs {
				one.AppendLFs(ix, []LabelFunction{f}, workers)
			}
			if !matricesEqual(t, one, want) {
				t.Logf("seed %d workers %d: one-at-a-time append diverged", seed, workers)
				return false
			}
			// Random batch sizes.
			batched := NewVoteMatrix(ix.Size())
			for lo := 0; lo < len(lfs); {
				hi := lo + 1 + rng.Intn(len(lfs)-lo)
				batched.AppendLFs(ix, lfs[lo:hi], workers)
				lo = hi
			}
			if !matricesEqual(t, batched, want) {
				t.Logf("seed %d workers %d: batched append diverged", seed, workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBuildVoteMatrixParallelMatchesSequential pins the worker-count
// independence of the full build.
func TestBuildVoteMatrixParallelMatchesSequential(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "free", "cash"}
	rng := rand.New(rand.NewSource(42))
	split := randomSplit(rng, vocab, 200)
	lfs := randomLFs(t, rng, vocab, 30)
	ix := NewIndex(split)
	want := BuildVoteMatrix(ix, lfs)
	for _, workers := range []int{2, 3, 8, 0} {
		got := BuildVoteMatrixParallel(ix, lfs, workers)
		if !matricesEqual(t, got, want) {
			t.Fatalf("workers=%d: parallel build diverged from sequential", workers)
		}
	}
}

// TestComputeStatsMatchesAccessors pins the single-pass Stats sweep to
// the per-statistic accessors, across worker counts.
func TestComputeStatsMatchesAccessors(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "free", "cash", "prize"}
	rng := rand.New(rand.NewSource(7))
	split := randomSplit(rng, vocab, 150)
	gold := make([]int, len(split))
	for i := range gold {
		if rng.Intn(5) == 0 {
			gold[i] = dataset.NoLabel
		} else {
			gold[i] = rng.Intn(3)
		}
	}
	lfs := randomLFs(t, rng, vocab, 20)
	vm := BuildVoteMatrix(NewIndex(split), lfs)

	wantAcc, wantOK := vm.MeanLFAccuracy(gold)
	covered := 0
	for _, b := range vm.Covered() {
		if b {
			covered++
		}
	}
	for _, workers := range []int{1, 4, 0} {
		s := vm.ComputeStats(gold, workers)
		if s.MeanCoverage != vm.MeanCoverage() {
			t.Errorf("workers=%d: MeanCoverage %v != %v", workers, s.MeanCoverage, vm.MeanCoverage())
		}
		if s.TotalCoverage != vm.TotalCoverage() {
			t.Errorf("workers=%d: TotalCoverage %v != %v", workers, s.TotalCoverage, vm.TotalCoverage())
		}
		if s.CoveredCount != covered {
			t.Errorf("workers=%d: CoveredCount %d != %d", workers, s.CoveredCount, covered)
		}
		if s.MeanLFAccuracy != wantAcc || s.AccuracyKnown != wantOK {
			t.Errorf("workers=%d: MeanLFAccuracy (%v,%v) != (%v,%v)",
				workers, s.MeanLFAccuracy, s.AccuracyKnown, wantAcc, wantOK)
		}
	}
}
