package prompt

import (
	"strings"
	"testing"
)

// FuzzParseResponse drives the completion parser with arbitrary bytes.
// The parser faces raw LLM output, so it must never panic or hang, and
// every accepted response must satisfy the contract the pipeline relies
// on: a non-negative label and trimmed, non-empty keyword phrases.
func FuzzParseResponse(f *testing.F) {
	for _, seed := range []string{
		"Explanation: spammy ask.\nKeywords: subscribe, check out\nLabel: 1",
		"Keywords: none\nLabel: 0",
		"Keywords: free\nLabel: 1.",
		"Keywords: free\nLabel: 1 (spam)",
		"keywords: subscribe, free\nlabel: 0",
		"explanation: looks fine\nKEYWORDS: melody\nLABEL: 0",
		"Keywords: ,,,\nLabel: 2",
		"Keywords:\nLabel: 007",
		"Label: 1\nKeywords: out of order",
		"Keywords: a\r\nLabel: 1\r\n",
		"Keywords: a\nLabel: 99999999999999999999",
		"Keywords: a\nLabel: -3",
		"", ":", "Keywords", "Label:", "\x00Keywords: x\nLabel: 0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		p, err := ParseResponse(content)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil result alongside an error")
			}
			return
		}
		if p.Label < 0 {
			t.Fatalf("accepted response with negative label %d", p.Label)
		}
		for _, k := range p.Keywords {
			if k == "" {
				t.Fatal("accepted empty keyword")
			}
			if strings.TrimSpace(k) != k {
				t.Fatalf("keyword %q not trimmed", k)
			}
			if strings.ContainsRune(k, '\n') {
				t.Fatalf("keyword %q spans lines", k)
			}
		}
		// A parse must be deterministic: same input, same output.
		q, err := ParseResponse(content)
		if err != nil {
			t.Fatal("reparse failed where first parse succeeded")
		}
		if q.Label != p.Label || len(q.Keywords) != len(p.Keywords) {
			t.Fatal("reparse disagrees with first parse")
		}
	})
}

// FuzzSelfConsistency aggregates two fuzzed samples; the aggregate must
// never panic and must echo an accepted label from some sample.
func FuzzSelfConsistency(f *testing.F) {
	f.Add("Keywords: a\nLabel: 1", "Keywords: b\nLabel: 1")
	f.Add("Keywords: none\nLabel: 0", "garbage")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, a, b string) {
		p, err := SelfConsistency([]string{a, b})
		if err != nil {
			return
		}
		if p.Label < 0 {
			t.Fatalf("aggregate label %d", p.Label)
		}
	})
}
