// Package prompt implements the prompting layer of DataSculpt: the Base
// and chain-of-thought templates of Figure 2, in-context example
// selection (class-balanced and KATE), response parsing, and
// self-consistency aggregation over multiple samples.
package prompt

import (
	"fmt"
	"strings"

	"datasculpt/internal/dataset"
	"datasculpt/internal/llm"
	"datasculpt/internal/textproc"
)

// Style selects the prompt template variant.
type Style int

const (
	// Base is the plain few-shot template.
	Base Style = iota
	// CoT adds the step-by-step reasoning instruction and explanations in
	// the demonstrations (Wei et al. 2022).
	CoT
)

// String implements fmt.Stringer.
func (s Style) String() string {
	if s == CoT {
		return "cot"
	}
	return "base"
}

// Token budgets applied when rendering. The paper reports DataSculpt-Base
// spending only ~39k tokens across all six datasets, which implies
// demonstrations and queries are clipped rather than pasted whole; these
// budgets reproduce that practice (long IMDB reviews are truncated, short
// Youtube comments pass through).
const (
	// MaxDemoTokens bounds each in-context demonstration's text.
	MaxDemoTokens = 24
	// MaxQueryTokens bounds the query instance's text.
	MaxQueryTokens = 80
)

// Demonstration is one annotated in-context example.
type Demonstration struct {
	// Text is the example passage (clipped at render time).
	Text string
	// Keywords are the indicative phrases the annotation highlights.
	Keywords []string
	// Label is the example's class.
	Label int
	// Explanation is the step-by-step reasoning (CoT templates only).
	Explanation string
}

// clipTokens truncates text to at most n tokens, joining on spaces.
func clipTokens(text string, n int) string {
	toks := textproc.Tokenize(text)
	if len(toks) <= n {
		return strings.Join(toks, " ")
	}
	return strings.Join(toks[:n], " ")
}

// Render builds the chat messages for one query instance: the system
// instruction (task description + output format), the demonstration
// blocks, and the final Query (with an Entities line for relation tasks).
func Render(style Style, d *dataset.Dataset, demos []Demonstration, query *dataset.Example) []llm.Message {
	var sys strings.Builder
	sys.WriteString("You are a helpful assistant who helps users in ")
	sys.WriteString(d.TaskDescription)
	sys.WriteString("\nAfter the user provides input, ")
	if style == CoT {
		sys.WriteString("first explain your reason process step by step. Then ")
	}
	sys.WriteString("identify a list of keywords that helps making prediction. " +
		"Finally, provide the class label for the input.")

	var user strings.Builder
	for _, demo := range demos {
		fmt.Fprintf(&user, "Query: %s\n", clipTokens(demo.Text, MaxDemoTokens))
		if style == CoT && demo.Explanation != "" {
			fmt.Fprintf(&user, "Explanation: %s\n", demo.Explanation)
		}
		fmt.Fprintf(&user, "Keywords: %s\n", strings.Join(demo.Keywords, ", "))
		fmt.Fprintf(&user, "Label: %d\n\n", demo.Label)
	}
	fmt.Fprintf(&user, "Query: %s", clipTokens(query.Text, MaxQueryTokens))
	if d.Task == dataset.RelationClassification {
		fmt.Fprintf(&user, "\nEntities: %s and %s", query.Entity1, query.Entity2)
	}

	return []llm.Message{
		{Role: llm.System, Content: sys.String()},
		{Role: llm.User, Content: user.String()},
	}
}

// AnnotateDemonstration plays the role of the paper's manual annotation of
// in-context examples: an expert marks the indicative keywords (and, for
// CoT, a short reasoning sentence) of a labeled validation example. The
// "expert knowledge" is the dataset's signal table — the same ground truth
// a human annotator of the real corpora would apply.
func AnnotateDemonstration(d *dataset.Dataset, e *dataset.Example) Demonstration {
	e.EnsureTokens()
	var keywords []string
	bestStrength := -1.0
	var best string
	for _, gram := range textproc.AllNGrams(e.Tokens, textproc.MaxKeywordLen) {
		sig, ok := d.Signal.Lookup(gram)
		if !ok || sig.Class != e.Label {
			continue
		}
		dup := false
		for _, k := range keywords {
			if k == gram {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if len(keywords) < 2 {
			keywords = append(keywords, gram)
		}
		if sig.Strength > bestStrength {
			bestStrength, best = sig.Strength, gram
		}
	}
	demo := Demonstration{
		Text:     e.Text,
		Keywords: keywords,
		Label:    e.Label,
	}
	className := d.ClassNames[e.Label]
	if len(keywords) > 0 {
		demo.Explanation = fmt.Sprintf("the input mentions %s, which indicates the %s class.",
			best, className)
	} else {
		// fall back to a generic content keyword so the demonstration
		// still shows the output format — but never a word that signals a
		// *different* class (a real annotator would not highlight one)
		for _, t := range textproc.ContentTokens(e.Tokens) {
			if _, isSignal := d.Signal.Lookup(t); isSignal {
				continue
			}
			demo.Keywords = []string{t}
			break
		}
		demo.Explanation = fmt.Sprintf("no single phrase is decisive, but the overall content suggests the %s class.",
			className)
	}
	return demo
}
