package prompt

import (
	"fmt"
	"strconv"
	"strings"
)

// Parsed is the structured content of one LLM response.
type Parsed struct {
	// Keywords are the raw keyword phrases (possibly empty when the model
	// declined to provide any, e.g. "Keywords: none").
	Keywords []string
	// Label is the predicted class.
	Label int
	// Explanation is the chain-of-thought text, if any.
	Explanation string
}

// ParseResponse extracts keywords and label from a completion in the
// Figure 2 output format. It returns an error for malformed responses
// (missing Keywords or Label lines, non-integer labels) — those count as
// validity-filter rejections upstream.
func ParseResponse(content string) (*Parsed, error) {
	p := &Parsed{Label: -1}
	haveKeywords := false
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "Explanation:"):
			p.Explanation = strings.TrimSpace(strings.TrimPrefix(line, "Explanation:"))
		case strings.HasPrefix(line, "Keywords:"):
			haveKeywords = true
			raw := strings.TrimSpace(strings.TrimPrefix(line, "Keywords:"))
			if raw == "" || strings.EqualFold(raw, "none") {
				continue
			}
			for _, k := range strings.Split(raw, ",") {
				k = strings.TrimSpace(k)
				if k != "" {
					p.Keywords = append(p.Keywords, k)
				}
			}
		case strings.HasPrefix(line, "Label:"):
			raw := strings.TrimSpace(strings.TrimPrefix(line, "Label:"))
			v, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("prompt: non-integer label %q", raw)
			}
			p.Label = v
		}
	}
	if !haveKeywords {
		return nil, fmt.Errorf("prompt: response has no Keywords line")
	}
	if p.Label < 0 {
		return nil, fmt.Errorf("prompt: response has no Label line")
	}
	return p, nil
}

// SelfConsistency aggregates multiple sampled responses (Wang et al.
// 2022): the label is decided by majority vote over parseable samples,
// and the keyword set is the union of keywords from samples that voted
// for the winning label, restricted to keywords proposed by at least two
// such samples (when four or more samples parsed). Consistency applies
// to the keywords as well as the label: a phrase the model surfaces once
// across ten samples is noise, while genuinely indicative phrases recur.
// The support threshold keeps SC's larger, more diverse LF sets without
// flooding the filters with one-off padding words.
func SelfConsistency(responses []string) (*Parsed, error) {
	var parsed []*Parsed
	for _, r := range responses {
		p, err := ParseResponse(r)
		if err != nil {
			continue // malformed samples are simply dropped
		}
		parsed = append(parsed, p)
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("prompt: no parseable response among %d samples", len(responses))
	}
	votes := make(map[int]int)
	for _, p := range parsed {
		votes[p.Label]++
	}
	winner, best := -1, -1
	for label, c := range votes {
		if c > best || (c == best && label < winner) {
			winner, best = label, c
		}
	}
	minSupport := 1
	if best >= 4 {
		minSupport = 2
	}
	out := &Parsed{Label: winner}
	support := make(map[string]int)
	for _, p := range parsed {
		if p.Label != winner {
			continue
		}
		if out.Explanation == "" {
			out.Explanation = p.Explanation
		}
		for _, k := range p.Keywords {
			support[k]++
			if support[k] == minSupport {
				out.Keywords = append(out.Keywords, k)
			}
		}
	}
	return out, nil
}
