package prompt

import (
	"fmt"
	"strconv"
	"strings"
)

// Parsed is the structured content of one LLM response.
type Parsed struct {
	// Keywords are the raw keyword phrases (possibly empty when the model
	// declined to provide any, e.g. "Keywords: none").
	Keywords []string
	// Label is the predicted class.
	Label int
	// Explanation is the chain-of-thought text, if any.
	Explanation string
}

// fieldValue reports whether line is a "Name: value" field, matching
// the field name case-insensitively (models emit "keywords:" about as
// often as "Keywords:"), and returns the trimmed value.
func fieldValue(line, name string) (string, bool) {
	if len(line) <= len(name) || line[len(name)] != ':' {
		return "", false
	}
	if !strings.EqualFold(line[:len(name)], name) {
		return "", false
	}
	return strings.TrimSpace(line[len(name)+1:]), true
}

// parseLabel extracts the leading integer of a Label value, tolerating
// trailing punctuation and commentary ("1.", "1 (spam)") that real
// completions append even when the template asks for a bare number.
func parseLabel(raw string) (int, error) {
	end := 0
	for end < len(raw) && raw[end] >= '0' && raw[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0, fmt.Errorf("prompt: non-integer label %q", raw)
	}
	v, err := strconv.Atoi(raw[:end])
	if err != nil {
		return 0, fmt.Errorf("prompt: non-integer label %q", raw)
	}
	return v, nil
}

// ParseResponse extracts keywords and label from a completion in the
// Figure 2 output format. Field names match case-insensitively and the
// label may carry trailing punctuation or commentary ("Label: 1."), but
// a response missing a Keywords or Label line, or whose label has no
// leading integer, is an error — those count as validity-filter
// rejections upstream.
func ParseResponse(content string) (*Parsed, error) {
	p := &Parsed{Label: -1}
	haveKeywords := false
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if raw, ok := fieldValue(line, "Explanation"); ok {
			p.Explanation = raw
		} else if raw, ok := fieldValue(line, "Keywords"); ok {
			haveKeywords = true
			if raw == "" || strings.EqualFold(raw, "none") {
				continue
			}
			for _, k := range strings.Split(raw, ",") {
				k = strings.TrimSpace(k)
				if k != "" {
					p.Keywords = append(p.Keywords, k)
				}
			}
		} else if raw, ok := fieldValue(line, "Label"); ok {
			v, err := parseLabel(raw)
			if err != nil {
				return nil, err
			}
			p.Label = v
		}
	}
	if !haveKeywords {
		return nil, fmt.Errorf("prompt: response has no Keywords line")
	}
	if p.Label < 0 {
		return nil, fmt.Errorf("prompt: response has no Label line")
	}
	return p, nil
}

// SelfConsistency aggregates multiple sampled responses (Wang et al.
// 2022): the label is decided by majority vote over parseable samples,
// and the keyword set is the union of keywords from samples that voted
// for the winning label, restricted to keywords proposed by at least two
// such samples (when four or more samples parsed). Consistency applies
// to the keywords as well as the label: a phrase the model surfaces once
// across ten samples is noise, while genuinely indicative phrases recur.
// The support threshold keeps SC's larger, more diverse LF sets without
// flooding the filters with one-off padding words.
func SelfConsistency(responses []string) (*Parsed, error) {
	var parsed []*Parsed
	for _, r := range responses {
		p, err := ParseResponse(r)
		if err != nil {
			continue // malformed samples are simply dropped
		}
		parsed = append(parsed, p)
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("prompt: no parseable response among %d samples", len(responses))
	}
	votes := make(map[int]int)
	for _, p := range parsed {
		votes[p.Label]++
	}
	winner, best := -1, -1
	for label, c := range votes {
		if c > best || (c == best && label < winner) {
			winner, best = label, c
		}
	}
	minSupport := 1
	if best >= 4 {
		minSupport = 2
	}
	out := &Parsed{Label: winner}
	support := make(map[string]int)
	for _, p := range parsed {
		if p.Label != winner {
			continue
		}
		if out.Explanation == "" {
			out.Explanation = p.Explanation
		}
		for _, k := range p.Keywords {
			support[k]++
			if support[k] == minSupport {
				out.Keywords = append(out.Keywords, k)
			}
		}
	}
	return out, nil
}
