package prompt

import (
	"strings"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/llm"
	"datasculpt/internal/textproc"
)

func loadYoutube(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Load("youtube", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRenderBase(t *testing.T) {
	d := loadYoutube(t)
	demos := []Demonstration{
		{Text: "love this song", Keywords: []string{"love this song"}, Label: 0},
		{Text: "subscribe to me", Keywords: []string{"subscribe"}, Label: 1},
	}
	msgs := Render(Base, d, demos, d.Train[0])
	if len(msgs) != 2 {
		t.Fatalf("messages = %d, want 2 (system+user)", len(msgs))
	}
	if msgs[0].Role != llm.System || msgs[1].Role != llm.User {
		t.Error("wrong roles")
	}
	if strings.Contains(msgs[0].Content, "step by step") {
		t.Error("Base template contains CoT instruction")
	}
	user := msgs[1].Content
	if got := strings.Count(user, "Query:"); got != 3 {
		t.Errorf("Query blocks = %d, want 3 (2 demos + 1 query)", got)
	}
	if !strings.Contains(user, "Keywords: love this song") {
		t.Error("demonstration keywords missing")
	}
}

func TestRenderCoT(t *testing.T) {
	d := loadYoutube(t)
	demos := []Demonstration{
		{Text: "nice melody", Keywords: []string{"melody"}, Label: 0, Explanation: "it praises the song."},
	}
	msgs := Render(CoT, d, demos, d.Train[0])
	if !strings.Contains(msgs[0].Content, "step by step") {
		t.Error("CoT template lacks the step-by-step instruction")
	}
	if !strings.Contains(msgs[1].Content, "Explanation: it praises the song.") {
		t.Error("demonstration explanation missing")
	}
}

func TestRenderRelationAddsEntities(t *testing.T) {
	d, err := dataset.Load("spouse", 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	msgs := Render(Base, d, nil, d.Train[0])
	if !strings.Contains(msgs[1].Content, "Entities: "+d.Train[0].Entity1) {
		t.Errorf("entities line missing: %q", msgs[1].Content)
	}
}

func TestRenderClipsLongQueries(t *testing.T) {
	d, err := dataset.Load("imdb", 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// find a long review
	var long *dataset.Example
	for _, e := range d.Train {
		if len(e.Tokens) > MaxQueryTokens+20 {
			long = e
			break
		}
	}
	if long == nil {
		t.Skip("no long review generated at this scale")
	}
	msgs := Render(Base, d, nil, long)
	user := msgs[1].Content
	queryLine := user[strings.LastIndex(user, "Query:"):]
	if n := len(textproc.Tokenize(queryLine)); n > MaxQueryTokens+2 {
		t.Errorf("query rendered with %d tokens, budget %d", n, MaxQueryTokens)
	}
}

func TestAnnotateDemonstration(t *testing.T) {
	d := loadYoutube(t)
	found := false
	for _, e := range d.Valid {
		demo := AnnotateDemonstration(d, e)
		if demo.Label != e.Label {
			t.Fatal("annotation changed the label")
		}
		if len(demo.Keywords) == 0 {
			t.Fatal("annotation produced no keywords at all")
		}
		// when a signal keyword is found it must belong to the example's class
		for _, k := range demo.Keywords {
			if sig, ok := d.Signal.Lookup(k); ok {
				found = true
				if sig.Class != e.Label {
					t.Fatalf("annotated keyword %q signals class %d, example is %d", k, sig.Class, e.Label)
				}
			}
		}
		if demo.Explanation == "" {
			t.Fatal("annotation produced no explanation")
		}
	}
	if !found {
		t.Error("no validation example got a signal-table keyword")
	}
}

func TestClassBalancedSelector(t *testing.T) {
	d := loadYoutube(t)
	sel, err := NewClassBalanced(d, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	demos := sel.Select(d.Train[0], 10)
	if len(demos) != 10 {
		t.Fatalf("selected %d demos, want 10", len(demos))
	}
	counts := map[int]int{}
	for _, demo := range demos {
		counts[demo.Label]++
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Errorf("class balance = %v, want 5/5", counts)
	}
	// the fixed set is query-independent
	again := sel.Select(d.Train[1], 10)
	for i := range demos {
		if demos[i].Text != again[i].Text {
			t.Error("class-balanced set varies across queries")
		}
	}
	if sel.Name() != "class-balanced" {
		t.Errorf("name = %q", sel.Name())
	}
}

func TestClassBalancedRejectsMissingClass(t *testing.T) {
	d := loadYoutube(t)
	// strip one class from validation
	var onlyHam []*dataset.Example
	for _, e := range d.Valid {
		if e.Label == 0 {
			onlyHam = append(onlyHam, e)
		}
	}
	d.Valid = onlyHam
	if _, err := NewClassBalanced(d, 10, 1); err == nil {
		t.Error("selector accepted a validation split missing a class")
	}
}

func TestKATESelectsSimilar(t *testing.T) {
	d := loadYoutube(t)
	feat := textproc.NewFeaturizer(4096)
	if err := feat.Fit(dataset.TokenCorpus(d.Train)); err != nil {
		t.Fatal(err)
	}
	kate, err := NewKATE(d, feat)
	if err != nil {
		t.Fatal(err)
	}
	query := d.Train[0]
	demos := kate.Select(query, 4)
	if len(demos) != 4 {
		t.Fatalf("selected %d, want 4", len(demos))
	}
	// the last demo (closest) must be at least as similar as the first
	qv := feat.Transform(query.Tokens)
	simOf := func(text string) float64 {
		return qv.Cosine(feat.Transform(textproc.Tokenize(text)))
	}
	if simOf(demos[len(demos)-1].Text) < simOf(demos[0].Text) {
		t.Error("KATE ordering violated: closest example should come last")
	}
	if kate.Name() != "kate" {
		t.Errorf("name = %q", kate.Name())
	}
}

func TestKATERequiresFittedFeaturizer(t *testing.T) {
	d := loadYoutube(t)
	if _, err := NewKATE(d, textproc.NewFeaturizer(64)); err == nil {
		t.Error("unfitted featurizer accepted")
	}
}

func TestParseResponse(t *testing.T) {
	p, err := ParseResponse("Explanation: spammy ask.\nKeywords: subscribe, check out\nLabel: 1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != 1 || len(p.Keywords) != 2 || p.Keywords[0] != "subscribe" || p.Keywords[1] != "check out" {
		t.Errorf("parsed = %+v", p)
	}
	if p.Explanation != "spammy ask." {
		t.Errorf("explanation = %q", p.Explanation)
	}
}

func TestParseResponseNone(t *testing.T) {
	p, err := ParseResponse("Keywords: none\nLabel: 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Keywords) != 0 || p.Label != 0 {
		t.Errorf("parsed = %+v", p)
	}
}

func TestParseResponseLenient(t *testing.T) {
	cases := []struct {
		in    string
		label int
		kws   []string
	}{
		// trailing punctuation after the label
		{"Keywords: free\nLabel: 1.", 1, []string{"free"}},
		// trailing commentary after the label
		{"Keywords: free\nLabel: 1 (spam)", 1, []string{"free"}},
		// lowercase field names
		{"keywords: subscribe, free\nlabel: 0", 0, []string{"subscribe", "free"}},
		// mixed case with explanation
		{"explanation: looks fine\nKEYWORDS: melody\nLABEL: 0", 0, []string{"melody"}},
	}
	for _, c := range cases {
		p, err := ParseResponse(c.in)
		if err != nil {
			t.Errorf("ParseResponse(%q): %v", c.in, err)
			continue
		}
		if p.Label != c.label {
			t.Errorf("ParseResponse(%q) label = %d, want %d", c.in, p.Label, c.label)
		}
		if len(p.Keywords) != len(c.kws) {
			t.Errorf("ParseResponse(%q) keywords = %v, want %v", c.in, p.Keywords, c.kws)
			continue
		}
		for i, k := range c.kws {
			if p.Keywords[i] != k {
				t.Errorf("ParseResponse(%q) keywords[%d] = %q, want %q", c.in, i, p.Keywords[i], k)
			}
		}
	}
}

func TestParseResponseMalformed(t *testing.T) {
	cases := []string{
		"I'm sorry, as an AI language model I cannot answer.",
		"Keywords: free",                 // no label
		"Label: 1",                       // no keywords
		"Keywords: free\nLabel: spam",    // non-integer label
		"Keywords: free\nLabel: (maybe)", // no leading integer
		"Keywords: free\nLabelled: 1",    // "Label" prefix of a longer word
		"Keywordsmith: free\nLabel: 1",   // "Keywords" prefix of a longer word
		"",
	}
	for _, c := range cases {
		if _, err := ParseResponse(c); err == nil {
			t.Errorf("ParseResponse(%q) succeeded", c)
		}
	}
}

func TestSelfConsistency(t *testing.T) {
	responses := []string{
		"Keywords: subscribe\nLabel: 1",
		"Keywords: check out\nLabel: 1",
		"Keywords: melody\nLabel: 0",
		"Keywords: subscribe, free gift\nLabel: 1",
		"total garbage response",
	}
	p, err := SelfConsistency(responses)
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != 1 {
		t.Errorf("majority label = %d, want 1", p.Label)
	}
	want := []string{"subscribe", "check out", "free gift"}
	if len(p.Keywords) != len(want) {
		t.Fatalf("keywords = %v, want %v", p.Keywords, want)
	}
	for i, k := range want {
		if p.Keywords[i] != k {
			t.Errorf("keywords[%d] = %q, want %q", i, p.Keywords[i], k)
		}
	}
}

func TestSelfConsistencyAllMalformed(t *testing.T) {
	if _, err := SelfConsistency([]string{"junk", "more junk"}); err == nil {
		t.Error("self-consistency over garbage succeeded")
	}
}

func TestSelfConsistencyTieBreaksLowLabel(t *testing.T) {
	p, err := SelfConsistency([]string{
		"Keywords: a\nLabel: 1",
		"Keywords: b\nLabel: 0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != 0 {
		t.Errorf("tie broke to %d, want 0", p.Label)
	}
}

func TestSelfConsistencySupportBoundary(t *testing.T) {
	// the support threshold switches exactly at 4 winning votes: with 3,
	// every keyword of a winning sample survives; with 4, one-off
	// keywords are dropped
	three := []string{
		"Keywords: subscribe, oneoff\nLabel: 1",
		"Keywords: subscribe\nLabel: 1",
		"Keywords: subscribe\nLabel: 1",
	}
	p, err := SelfConsistency(three)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Keywords) != 2 {
		t.Errorf("3 winning votes: keywords = %v, want [subscribe oneoff]", p.Keywords)
	}

	four := append(three, "Keywords: subscribe\nLabel: 1")
	p, err = SelfConsistency(four)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Keywords) != 1 || p.Keywords[0] != "subscribe" {
		t.Errorf("4 winning votes: keywords = %v, want [subscribe]", p.Keywords)
	}

	// unparseable samples don't count toward the threshold: 4 samples of
	// which only 3 parse keeps the lenient threshold
	fourOneBroken := append(append([]string{}, three...), "total garbage")
	p, err = SelfConsistency(fourOneBroken)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Keywords) != 2 {
		t.Errorf("3 parseable of 4 samples: keywords = %v, want both", p.Keywords)
	}

	// losing-side votes don't count either: 4 parseable samples but only
	// 3 for the winner keeps the lenient threshold
	fourSplit := append(append([]string{}, three...), "Keywords: melody\nLabel: 0")
	p, err = SelfConsistency(fourSplit)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Keywords) != 2 {
		t.Errorf("3-1 vote split: keywords = %v, want both winning-side keywords", p.Keywords)
	}
}

func TestSelfConsistencyKeywordSupport(t *testing.T) {
	// With >=4 parseable winning samples, keywords need support >= 2:
	// "subscribe" recurs, the one-off padding words are dropped.
	responses := []string{
		"Keywords: subscribe, randomword\nLabel: 1",
		"Keywords: subscribe\nLabel: 1",
		"Keywords: subscribe, otherpad\nLabel: 1",
		"Keywords: subscribe, free gift\nLabel: 1",
		"Keywords: free gift\nLabel: 1",
	}
	p, err := SelfConsistency(responses)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"subscribe": true, "free gift": true}
	if len(p.Keywords) != len(want) {
		t.Fatalf("keywords = %v, want exactly %v", p.Keywords, want)
	}
	for _, k := range p.Keywords {
		if !want[k] {
			t.Errorf("unsupported keyword %q survived", k)
		}
	}
}
