package prompt

import (
	"sort"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/textproc"
)

// referenceSelect is the pre-ANN KATE scan, kept verbatim as the oracle:
// full qv.Cosine sweep, sim-descending/idx-ascending sort, reversed output.
func referenceSelect(k *KATE, query *dataset.Example, n int) []Demonstration {
	qv := k.feat.Transform(query.FeatureTokens())
	type scored struct {
		idx int
		sim float64
	}
	scores := make([]scored, len(k.vecs))
	for i, v := range k.vecs {
		scores[i] = scored{i, qv.Cosine(v)}
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].sim != scores[b].sim {
			return scores[a].sim > scores[b].sim
		}
		return scores[a].idx < scores[b].idx
	})
	if n > len(scores) {
		n = len(scores)
	}
	out := make([]Demonstration, n)
	for i := 0; i < n; i++ {
		out[n-1-i] = k.demos[scores[i].idx]
	}
	return out
}

func fittedYoutube(t *testing.T) (*dataset.Dataset, *textproc.Featurizer) {
	t.Helper()
	d := loadYoutube(t)
	feat := textproc.NewFeaturizer(4096)
	if err := feat.Fit(dataset.TokenCorpus(d.Train)); err != nil {
		t.Fatal(err)
	}
	return d, feat
}

// TestKATEExactPathBitIdentical: the cached-norm scoring must reproduce
// the historical Cosine scan bit for bit on every query.
func TestKATEExactPathBitIdentical(t *testing.T) {
	d, feat := fittedYoutube(t)
	kate, err := NewKATE(d, feat)
	if err != nil {
		t.Fatal(err)
	}
	if kate.ANNEnabled() {
		t.Fatalf("ANN enabled on a %d-doc pool below the default threshold", len(d.Valid))
	}
	for _, q := range d.Train[:40] {
		got := kate.Select(q, 10)
		want := referenceSelect(kate, q, 10)
		if len(got) != len(want) {
			t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Text != want[i].Text || got[i].Label != want[i].Label {
				t.Fatalf("query %q demo %d differs from reference scan", q.Text, i)
			}
		}
	}
}

// TestKATEANNMatchesExactWhenShortlistCovers: with a forced-low threshold
// the ANN path must return the same demonstrations as the exact scan
// whenever the shortlist contains the true top-n (a generous multiplier
// on a small pool guarantees full coverage).
func TestKATEANNMatchesExactWhenShortlistCovers(t *testing.T) {
	d, feat := fittedYoutube(t)
	exact, err := NewKATEWithOptions(d, feat, KATEOptions{ANNThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	annSel, err := NewKATEWithOptions(d, feat, KATEOptions{
		ANNThreshold:        1,
		CandidateMultiplier: 64,
		Seed:                11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !annSel.ANNEnabled() {
		t.Fatal("threshold 1 did not enable ANN")
	}
	agree := 0
	for _, q := range d.Train[:40] {
		want := exact.Select(q, 5)
		got := annSel.Select(q, 5)
		same := len(got) == len(want)
		if same {
			for i := range got {
				if got[i].Text != want[i].Text {
					same = false
					break
				}
			}
		}
		if same {
			agree++
		}
	}
	// a 64x multiplier on a ~120-doc pool shortlists everything, so the
	// two paths must agree on every query
	if agree != 40 {
		t.Fatalf("ANN path agreed with exact on %d/40 queries, want 40", agree)
	}
}

// TestKATEThresholdGate: negative threshold always disables ANN; a pool
// below the threshold keeps the exact path; metrics record which path ran.
func TestKATEThresholdGate(t *testing.T) {
	d, feat := fittedYoutube(t)
	reg := obs.NewRegistry()
	off, err := NewKATEWithOptions(d, feat, KATEOptions{ANNThreshold: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if off.ANNEnabled() {
		t.Error("negative threshold still built an index")
	}
	off.Select(d.Train[0], 5)
	if got := reg.CounterValue("kate_exact_queries_total"); got != 1 {
		t.Errorf("kate_exact_queries_total = %v, want 1", got)
	}
	if got := reg.CounterValue("kate_ann_queries_total"); got != 0 {
		t.Errorf("kate_ann_queries_total = %v, want 0", got)
	}

	reg2 := obs.NewRegistry()
	on, err := NewKATEWithOptions(d, feat, KATEOptions{ANNThreshold: 1, CandidateMultiplier: 1, Seed: 3, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if !on.ANNEnabled() {
		t.Fatal("threshold 1 did not build an index")
	}
	on.Select(d.Train[0], 5)
	ann := reg2.CounterValue("kate_ann_queries_total")
	exact := reg2.CounterValue("kate_exact_queries_total")
	if ann+exact != 1 {
		t.Errorf("query counted %v times across paths, want exactly once", ann+exact)
	}
}

// TestKATESelectAllocs is the satellite's AllocsPerRun gate: steady-state
// Select must not reallocate the scoring buffer or re-derive stored
// norms. The remaining allocations are the query transform and the
// returned demonstration slice.
func TestKATESelectAllocs(t *testing.T) {
	d, feat := fittedYoutube(t)
	kate, err := NewKATE(d, feat)
	if err != nil {
		t.Fatal(err)
	}
	queries := d.Train[:8]
	for _, q := range queries {
		q.FeatureTokens() // warm token caches
		kate.Select(q, 10)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		kate.Select(queries[i%len(queries)], 10)
		i++
	})
	// Transform allocates the query vector (~4: map, vector, idx, val)
	// and take allocates the output slice; the scan itself must be free.
	if allocs > 12 {
		t.Errorf("Select allocates %.1f objects/op, want <= 12", allocs)
	}
}

func BenchmarkKATESelectExact(b *testing.B) {
	d, err := dataset.Load("youtube", 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	feat := textproc.NewFeaturizer(8192)
	if err := feat.Fit(dataset.TokenCorpus(d.Train)); err != nil {
		b.Fatal(err)
	}
	kate, err := NewKATE(d, feat)
	if err != nil {
		b.Fatal(err)
	}
	dataset.PreTokenize(d.Train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kate.Select(d.Train[i%len(d.Train)], 10)
	}
}
