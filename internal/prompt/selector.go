package prompt

import (
	"fmt"
	"math/rand"
	"sort"

	"datasculpt/internal/ann"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/textproc"
)

// DefaultShots is the number of in-context examples per prompt (the paper
// selects ten examples per dataset).
const DefaultShots = 10

// ExampleSelector chooses annotated in-context examples for one query.
type ExampleSelector interface {
	// Name identifies the strategy in reports.
	Name() string
	// Select returns up to k demonstrations for the query instance.
	Select(query *dataset.Example, k int) []Demonstration
}

// ClassBalanced selects a fixed, class-balanced demonstration set from
// the validation split, annotated once up front — the paper's default
// ("we select ten examples per dataset from the validation set ... and
// manually provide keywords and explanations"). The same demonstrations
// are reused for every query.
type ClassBalanced struct {
	demos []Demonstration
}

// NewClassBalanced samples k validation examples balanced across classes.
func NewClassBalanced(d *dataset.Dataset, k int, seed int64) (*ClassBalanced, error) {
	if k <= 0 {
		k = DefaultShots
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]*dataset.Example, d.NumClasses())
	for _, e := range d.Valid {
		byClass[e.Label] = append(byClass[e.Label], e)
	}
	for c, list := range byClass {
		if len(list) == 0 {
			return nil, fmt.Errorf("class-balanced selector: class %d absent from validation split", c)
		}
	}
	sel := &ClassBalanced{}
	perClass := k / d.NumClasses()
	if perClass == 0 {
		perClass = 1
	}
	for c, list := range byClass {
		idx := rng.Perm(len(list))
		take := perClass
		// spread the remainder over the first classes
		if rem := k - perClass*d.NumClasses(); c < rem {
			take++
		}
		if take > len(idx) {
			take = len(idx)
		}
		for _, i := range idx[:take] {
			sel.demos = append(sel.demos, AnnotateDemonstration(d, list[i]))
		}
	}
	// interleave classes so the prompt alternates labels
	sort.SliceStable(sel.demos, func(i, j int) bool {
		return sel.demos[i].Label < sel.demos[j].Label
	})
	interleaved := make([]Demonstration, 0, len(sel.demos))
	buckets := make([][]Demonstration, d.NumClasses())
	for _, demo := range sel.demos {
		buckets[demo.Label] = append(buckets[demo.Label], demo)
	}
	for len(interleaved) < len(sel.demos) {
		for c := range buckets {
			if len(buckets[c]) > 0 {
				interleaved = append(interleaved, buckets[c][0])
				buckets[c] = buckets[c][1:]
			}
		}
	}
	sel.demos = interleaved
	return sel, nil
}

// Name implements ExampleSelector.
func (s *ClassBalanced) Name() string { return "class-balanced" }

// Select implements ExampleSelector: the fixed set, clipped to k.
func (s *ClassBalanced) Select(_ *dataset.Example, k int) []Demonstration {
	if k <= 0 || k > len(s.demos) {
		k = len(s.demos)
	}
	return s.demos[:k]
}

// DefaultANNThreshold is the demonstration-pool size at which NewKATE
// starts building the LSH index. It sits above every validation split of
// the paper's Table 1 at scale 1 (the largest, Agnews, has 12k), so runs
// on the reproduced corpora keep the exact scan bit-for-bit; only the
// out-of-core scale knob crosses it.
const DefaultANNThreshold = 16384

// DefaultANNMultiplier is the shortlist size as a multiple of the
// requested k: the LSH index gathers multiplier*k candidates which are
// then exactly re-ranked.
const DefaultANNMultiplier = 16

// KATEOptions tunes the retrieval path of a KATE selector. The zero
// value reproduces the historical exact-scan selector on every corpus
// below DefaultANNThreshold.
type KATEOptions struct {
	// ANNThreshold is the pool size at or above which the LSH index is
	// built (0 selects DefaultANNThreshold; negative disables ANN
	// retrieval entirely, forcing the exact scan at any size).
	ANNThreshold int
	// CandidateMultiplier sizes the LSH shortlist as multiplier*k
	// exact-reranked candidates (0 selects DefaultANNMultiplier).
	CandidateMultiplier int
	// Seed derives the LSH projections (reproducible at any worker
	// count).
	Seed int64
	// Workers bounds index-build parallelism (<= 1 sequential).
	Workers int
	// Metrics receives kate_* counters; nil disables them for free.
	Metrics *obs.Registry
}

// KATE selects the validation examples nearest to the query in feature
// space (Liu et al. 2021). Annotations are generated automatically (the
// paper uses the LLM itself for this since manual annotation per query is
// impractical; here the same annotation routine plays that role — see
// AnnotateDemonstration).
//
// Below the ANN threshold every Select is an exact cosine scan; at or
// above it, an ann.Index shortlists multiplier*k candidates which are
// exactly re-ranked, so whenever the true top-k are inside the shortlist
// the selected demonstrations are identical to the exact scan's.
//
// A KATE selector is not safe for concurrent Select calls: it reuses a
// scratch scoring buffer across calls (the pipeline queries it from a
// single loop).
type KATE struct {
	feat  *textproc.Featurizer
	valid []*dataset.Example
	vecs  []*textproc.SparseVector
	// norms caches each stored vector's Euclidean norm so Select never
	// re-derives them; similarities are computed as Dot/(qn*norms[i]),
	// the exact arithmetic of SparseVector.Cosine.
	norms []float64
	demos []Demonstration

	index *ann.Index // nil below the threshold
	mult  int

	// scratch is the reusable scoring buffer (sim descending, idx
	// ascending); sorting goes through the *kateScored pointer so the
	// steady-state Select allocates nothing per stored example.
	scratch kateScored

	annQueries, exactQueries *obs.Counter
	shortlisted              *obs.Counter
}

// kateScored sorts scored pool indices by similarity descending, index
// ascending — the unique total order both retrieval paths share.
type kateScored []struct {
	idx int32
	sim float64
}

func (s *kateScored) Len() int      { return len(*s) }
func (s *kateScored) Swap(i, j int) { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }
func (s *kateScored) Less(i, j int) bool {
	a, b := (*s)[i], (*s)[j]
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	return a.idx < b.idx
}

// NewKATE builds the retriever over the validation split using the given
// fitted featurizer (shared with the end model, as BERT is in the paper),
// with default options.
func NewKATE(d *dataset.Dataset, feat *textproc.Featurizer) (*KATE, error) {
	return NewKATEWithOptions(d, feat, KATEOptions{})
}

// NewKATEWithOptions is NewKATE with explicit retrieval options.
func NewKATEWithOptions(d *dataset.Dataset, feat *textproc.Featurizer, opts KATEOptions) (*KATE, error) {
	if !feat.Fitted() {
		return nil, fmt.Errorf("kate: featurizer not fitted")
	}
	if opts.ANNThreshold == 0 {
		opts.ANNThreshold = DefaultANNThreshold
	}
	if opts.CandidateMultiplier <= 0 {
		opts.CandidateMultiplier = DefaultANNMultiplier
	}
	k := &KATE{
		feat:         feat,
		valid:        d.Valid,
		mult:         opts.CandidateMultiplier,
		annQueries:   opts.Metrics.Counter("kate_ann_queries_total", "KATE selections answered via the LSH shortlist"),
		exactQueries: opts.Metrics.Counter("kate_exact_queries_total", "KATE selections answered by the exact cosine scan"),
		shortlisted:  opts.Metrics.Counter("kate_shortlist_candidates_total", "candidates exactly re-ranked by ANN selections"),
	}
	k.vecs = make([]*textproc.SparseVector, len(d.Valid))
	k.norms = make([]float64, len(d.Valid))
	k.demos = make([]Demonstration, len(d.Valid))
	for i, e := range d.Valid {
		k.vecs[i] = feat.Transform(e.FeatureTokens())
		k.norms[i] = k.vecs[i].Norm()
		k.demos[i] = AnnotateDemonstration(d, e)
	}
	if opts.ANNThreshold > 0 && len(k.vecs) >= opts.ANNThreshold {
		k.index = ann.New(ann.Config{
			Dim:     feat.Dim,
			Seed:    opts.Seed,
			Workers: opts.Workers,
		})
		k.index.Add(k.vecs)
	}
	return k, nil
}

// Name implements ExampleSelector.
func (k *KATE) Name() string { return "kate" }

// ANNEnabled reports whether Select goes through the LSH index.
func (k *KATE) ANNEnabled() bool { return k.index != nil }

// Select implements ExampleSelector: the k nearest validation examples by
// cosine similarity, most similar last (closest to the query in the
// prompt, the ordering KATE recommends).
func (k *KATE) Select(query *dataset.Example, n int) []Demonstration {
	if n <= 0 {
		n = DefaultShots
	}
	qv := k.feat.Transform(query.FeatureTokens())
	qn := qv.Norm()

	if k.index != nil {
		if short := k.index.Candidates(qv, k.mult*n); len(short) < len(k.vecs) {
			k.annQueries.Inc()
			k.shortlisted.AddInt(len(short))
			k.scratch = k.scratch[:0]
			for _, id := range short {
				k.score(qv, qn, id)
			}
			return k.take(n)
		}
	}
	k.exactQueries.Inc()
	k.scratch = k.scratch[:0]
	for i := range k.vecs {
		k.score(qv, qn, int32(i))
	}
	return k.take(n)
}

// score appends pool entry id's similarity to the scratch buffer using
// the cached norms. The zero-norm guard and the Dot/(nv*no) arithmetic
// mirror SparseVector.Cosine exactly, so scores are bit-identical to the
// historical qv.Cosine(v) scan.
func (k *KATE) score(qv *textproc.SparseVector, qn float64, id int32) {
	var sim float64
	if vn := k.norms[id]; qn != 0 && vn != 0 {
		sim = qv.Dot(k.vecs[id]) / (qn * vn)
	}
	k.scratch = append(k.scratch, struct {
		idx int32
		sim float64
	}{id, sim})
}

// take sorts the scratch buffer and returns the top n demonstrations,
// most similar last.
func (k *KATE) take(n int) []Demonstration {
	sort.Sort(&k.scratch)
	if n > len(k.scratch) {
		n = len(k.scratch)
	}
	out := make([]Demonstration, n)
	for i := 0; i < n; i++ {
		// reverse order: most similar example adjacent to the query
		out[n-1-i] = k.demos[k.scratch[i].idx]
	}
	return out
}
