package prompt

import (
	"fmt"
	"math/rand"
	"sort"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// DefaultShots is the number of in-context examples per prompt (the paper
// selects ten examples per dataset).
const DefaultShots = 10

// ExampleSelector chooses annotated in-context examples for one query.
type ExampleSelector interface {
	// Name identifies the strategy in reports.
	Name() string
	// Select returns up to k demonstrations for the query instance.
	Select(query *dataset.Example, k int) []Demonstration
}

// ClassBalanced selects a fixed, class-balanced demonstration set from
// the validation split, annotated once up front — the paper's default
// ("we select ten examples per dataset from the validation set ... and
// manually provide keywords and explanations"). The same demonstrations
// are reused for every query.
type ClassBalanced struct {
	demos []Demonstration
}

// NewClassBalanced samples k validation examples balanced across classes.
func NewClassBalanced(d *dataset.Dataset, k int, seed int64) (*ClassBalanced, error) {
	if k <= 0 {
		k = DefaultShots
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]*dataset.Example, d.NumClasses())
	for _, e := range d.Valid {
		byClass[e.Label] = append(byClass[e.Label], e)
	}
	for c, list := range byClass {
		if len(list) == 0 {
			return nil, fmt.Errorf("class-balanced selector: class %d absent from validation split", c)
		}
	}
	sel := &ClassBalanced{}
	perClass := k / d.NumClasses()
	if perClass == 0 {
		perClass = 1
	}
	for c, list := range byClass {
		idx := rng.Perm(len(list))
		take := perClass
		// spread the remainder over the first classes
		if rem := k - perClass*d.NumClasses(); c < rem {
			take++
		}
		if take > len(idx) {
			take = len(idx)
		}
		for _, i := range idx[:take] {
			sel.demos = append(sel.demos, AnnotateDemonstration(d, list[i]))
		}
	}
	// interleave classes so the prompt alternates labels
	sort.SliceStable(sel.demos, func(i, j int) bool {
		return sel.demos[i].Label < sel.demos[j].Label
	})
	interleaved := make([]Demonstration, 0, len(sel.demos))
	buckets := make([][]Demonstration, d.NumClasses())
	for _, demo := range sel.demos {
		buckets[demo.Label] = append(buckets[demo.Label], demo)
	}
	for len(interleaved) < len(sel.demos) {
		for c := range buckets {
			if len(buckets[c]) > 0 {
				interleaved = append(interleaved, buckets[c][0])
				buckets[c] = buckets[c][1:]
			}
		}
	}
	sel.demos = interleaved
	return sel, nil
}

// Name implements ExampleSelector.
func (s *ClassBalanced) Name() string { return "class-balanced" }

// Select implements ExampleSelector: the fixed set, clipped to k.
func (s *ClassBalanced) Select(_ *dataset.Example, k int) []Demonstration {
	if k <= 0 || k > len(s.demos) {
		k = len(s.demos)
	}
	return s.demos[:k]
}

// KATE selects the validation examples nearest to the query in feature
// space (Liu et al. 2021). Annotations are generated automatically (the
// paper uses the LLM itself for this since manual annotation per query is
// impractical; here the same annotation routine plays that role — see
// AnnotateDemonstration).
type KATE struct {
	feat  *textproc.Featurizer
	valid []*dataset.Example
	vecs  []*textproc.SparseVector
	demos []Demonstration
}

// NewKATE builds the retriever over the validation split using the given
// fitted featurizer (shared with the end model, as BERT is in the paper).
func NewKATE(d *dataset.Dataset, feat *textproc.Featurizer) (*KATE, error) {
	if !feat.Fitted() {
		return nil, fmt.Errorf("kate: featurizer not fitted")
	}
	k := &KATE{feat: feat, valid: d.Valid}
	k.vecs = make([]*textproc.SparseVector, len(d.Valid))
	k.demos = make([]Demonstration, len(d.Valid))
	for i, e := range d.Valid {
		k.vecs[i] = feat.Transform(e.FeatureTokens())
		k.demos[i] = AnnotateDemonstration(d, e)
	}
	return k, nil
}

// Name implements ExampleSelector.
func (k *KATE) Name() string { return "kate" }

// Select implements ExampleSelector: the k nearest validation examples by
// cosine similarity, most similar last (closest to the query in the
// prompt, the ordering KATE recommends).
func (k *KATE) Select(query *dataset.Example, n int) []Demonstration {
	if n <= 0 {
		n = DefaultShots
	}
	qv := k.feat.Transform(query.FeatureTokens())
	type scored struct {
		idx int
		sim float64
	}
	scores := make([]scored, len(k.vecs))
	for i, v := range k.vecs {
		scores[i] = scored{i, qv.Cosine(v)}
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].sim != scores[b].sim {
			return scores[a].sim > scores[b].sim
		}
		return scores[a].idx < scores[b].idx
	})
	if n > len(scores) {
		n = len(scores)
	}
	out := make([]Demonstration, n)
	for i := 0; i < n; i++ {
		// reverse order: most similar example adjacent to the query
		out[n-1-i] = k.demos[scores[i].idx]
	}
	return out
}
