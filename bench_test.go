// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations of this reproduction's own design
// choices (DESIGN.md §5). Each benchmark runs the corresponding
// experiment sweep at a reduced scale (single seed, 15% split sizes) so
// the whole suite completes in minutes on one core; `cmd/benchtab`
// regenerates the tables at the paper's full protocol. The rendered
// tables are emitted via b.Log so `go test -bench . -v` doubles as a
// report generator.
package datasculpt_test

import (
	"fmt"
	"testing"

	"datasculpt"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/experiment"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
)

// benchOptions is the reduced-protocol sweep configuration shared by the
// table benchmarks.
func benchOptions() experiment.Options {
	return experiment.Options{Seeds: 1, Scale: 0.15, Iterations: 50}
}

// gridBench measures one Table 2 sweep at the given worker count; run
// `go test -bench=Grid -benchtime=1x` to compare serial vs parallel
// wall-clock on the same grid.
func gridBench(b *testing.B, workers int) {
	b.Helper()
	o := benchOptions()
	o.Workers = workers
	for i := 0; i < b.N; i++ {
		g, err := experiment.MainResults(o)
		if err != nil {
			b.Fatal(err)
		}
		if g.FailedCells() != 0 {
			b.Fatalf("%d failed cells", g.FailedCells())
		}
	}
}

// BenchmarkGridSerial is the old engine's behavior: one cell at a time.
func BenchmarkGridSerial(b *testing.B) { gridBench(b, 1) }

// BenchmarkGridParallel runs the same grid over 8 workers; the resulting
// grid is byte-identical to BenchmarkGridSerial's. Speedup scales with
// available cores (on a single-core host the two benchmarks tie, which
// bounds the scheduler's overhead at ~zero).
func BenchmarkGridParallel(b *testing.B) { gridBench(b, 8) }

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiment.RenderTable1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkTable2MainResults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiment.MainResults(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderGrid(g))
			b.Log("\n" + experiment.RenderPaperComparison(g, experiment.PaperTable2))
		}
	}
}

func BenchmarkFigure3Tokens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiment.MainResults(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderFigure3(g))
		}
	}
}

func BenchmarkFigure4Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiment.MainResults(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderFigure4(g))
		}
	}
}

func BenchmarkTable3LLMs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiment.LLMAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderGrid(g))
			b.Log("\n" + experiment.RenderPaperComparison(g, experiment.PaperTable3))
		}
	}
}

func BenchmarkTable4Samplers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiment.SamplerAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderGrid(g))
			b.Log("\n" + experiment.RenderPaperComparison(g, experiment.PaperTable4))
		}
	}
}

func BenchmarkTable5Filters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiment.FilterAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderGrid(g))
			b.Log("\n" + experiment.RenderPaperComparison(g, experiment.PaperTable5))
		}
	}
}

// ---- Reproduction design-choice ablations (DESIGN.md §5) ----

// ablationRun executes one pipeline configuration on one dataset at bench
// scale and returns the result.
func ablationRun(b *testing.B, dsName string, mutate func(*core.Config)) *core.Result {
	b.Helper()
	d, err := dataset.Load(dsName, 7013, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantSC)
	cfg.Seed = 101
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := core.Run(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationLabelModels compares the three label models on the
// binary datasets (the triplet method is binary-only).
func BenchmarkAblationLabelModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var report string
		for _, lm := range []string{"metal", "majority", "triplet"} {
			for _, ds := range []string{"youtube", "sms"} {
				res := ablationRun(b, ds, func(c *core.Config) { c.LabelModel = lm })
				report += fmt.Sprintf("  %-9s %-8s %s=%.3f (#LF %d)\n", lm, ds, res.MetricName, res.EndMetric, res.NumLFs)
			}
		}
		if i == 0 {
			b.Log("\nlabel model ablation:\n" + report)
		}
	}
}

// BenchmarkAblationSCSamples sweeps the self-consistency sample count.
func BenchmarkAblationSCSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var report string
		for _, n := range []int{1, 3, 10} {
			res := ablationRun(b, "youtube", func(c *core.Config) { c.SCSamples = n })
			report += fmt.Sprintf("  samples=%-3d #LF=%-4d acc=%.3f tokens=%d\n",
				n, res.NumLFs, res.EndMetric, res.TotalTokens())
		}
		if i == 0 {
			b.Log("\nself-consistency sample ablation:\n" + report)
		}
	}
}

// BenchmarkAblationAccuracyThreshold sweeps the accuracy-filter floor.
func BenchmarkAblationAccuracyThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var report string
		for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			res := ablationRun(b, "youtube", func(c *core.Config) {
				c.Filters = lf.FilterConfig{UseAccuracy: true, UseRedundancy: true, AccuracyThreshold: th}
			})
			report += fmt.Sprintf("  threshold=%.1f #LF=%-4d LFacc=%s acc=%.3f\n",
				th, res.NumLFs, res.LFAccuracyString(), res.EndMetric)
		}
		if i == 0 {
			b.Log("\naccuracy-threshold ablation:\n" + report)
		}
	}
}

// BenchmarkAblationDefaultClass toggles the default-class mechanism on
// Spouse (paper §3.6 motivates it with exactly this dataset).
func BenchmarkAblationDefaultClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d1, err := dataset.Load("spouse", 7013, 0.15)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(core.VariantSC)
		cfg.Seed = 101
		withDefault, err := core.Run(d1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		d2, err := dataset.Load("spouse", 7013, 0.15)
		if err != nil {
			b.Fatal(err)
		}
		d2.DefaultClass = dataset.NoDefaultClass
		without, err := core.Run(d2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\ndefault-class ablation on spouse:\n  with default:    F1=%.3f\n  without default: F1=%.3f\n",
				withDefault.EndMetric, without.EndMetric)
		}
	}
}

// BenchmarkAblationShots sweeps the number of in-context examples.
func BenchmarkAblationShots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var report string
		for _, shots := range []int{2, 4, 10} {
			res := ablationRun(b, "youtube", func(c *core.Config) { c.Shots = shots })
			report += fmt.Sprintf("  shots=%-3d #LF=%-4d acc=%.3f tokens=%d\n",
				shots, res.NumLFs, res.EndMetric, res.TotalTokens())
		}
		if i == 0 {
			b.Log("\nin-context shots ablation:\n" + report)
		}
	}
}

// BenchmarkAblationPropensityModel compares the full MeTaL variant against
// the classic abstain-uninformative model and the single-class-vote
// suppression variant on the imbalanced SMS dataset, where the
// differences are largest.
func BenchmarkAblationPropensityModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := dataset.Load("sms", 7013, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(core.VariantSC)
		cfg.Seed = 101
		res, err := core.Run(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ix := lf.NewIndex(d.Train)
		vm := lf.BuildVoteMatrix(ix, res.LFs)
		var report string
		for _, variant := range []struct {
			name  string
			model *labelmodel.MeTaL
		}{
			{"propensity (default)", labelmodel.NewMeTaL()},
			{"no propensity", &labelmodel.MeTaL{}},
			{"propensity, voteless", &labelmodel.MeTaL{ModelPropensity: true, SuppressSingleClassVote: true}},
		} {
			if err := variant.model.Fit(vm, d.NumClasses()); err != nil {
				b.Fatal(err)
			}
			proba := variant.model.PredictProba(vm)
			correct, covered := 0, 0
			gold := dataset.Labels(d.Train)
			for t, p := range proba {
				if p == nil || gold[t] < 0 {
					continue
				}
				covered++
				best := 0
				for c := 1; c < len(p); c++ {
					if p[c] > p[best] {
						best = c
					}
				}
				if best == gold[t] {
					correct++
				}
			}
			report += fmt.Sprintf("  %-22s train-label acc=%.3f over %d covered\n",
				variant.name, float64(correct)/float64(covered), covered)
		}
		if i == 0 {
			b.Log("\nlabel-model propensity ablation (sms):\n" + report)
		}
	}
}

// BenchmarkPipelineYoutube measures one full default pipeline run — the
// unit of work every table cell above repeats.
func BenchmarkPipelineYoutube(b *testing.B) {
	d, err := datasculpt.LoadDataset("youtube", 1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
		cfg.Seed = int64(i + 1)
		if _, err := datasculpt.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRevision measures the counterexample-revision pass
// (the paper's stated future work) against the plain pipeline.
func BenchmarkAblationRevision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := ablationRun(b, "youtube", nil)
		revised := ablationRun(b, "youtube", func(c *core.Config) {
			c.ReviseRejected = true
			c.MaxRevisions = 10
		})
		if i == 0 {
			b.Logf("\nrevision ablation (youtube):\n  plain:   #LF=%d acc=%.3f tokens=%d\n  revised: #LF=%d acc=%.3f tokens=%d\n",
				plain.NumLFs, plain.EndMetric, plain.TotalTokens(),
				revised.NumLFs, revised.EndMetric, revised.TotalTokens())
		}
	}
}

// BenchmarkAblationExtendedSamplers adds the two related-work samplers
// (QBC, core-set) to the paper's three — testing takeaway T3 beyond the
// strategies the paper evaluated.
func BenchmarkAblationExtendedSamplers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var report string
		for _, smp := range []string{"random", "uncertain", "seu", "qbc", "coreset"} {
			res := ablationRun(b, "youtube", func(c *core.Config) { c.Sampler = smp })
			report += fmt.Sprintf("  %-10s #LF=%-4d acc=%.3f\n", smp, res.NumLFs, res.EndMetric)
		}
		if i == 0 {
			b.Log("\nextended sampler ablation (youtube):\n" + report)
		}
	}
}

// BenchmarkAblationExtraLabelModels adds Dawid-Skene and the
// validation-weighted vote to the label-model comparison.
func BenchmarkAblationExtraLabelModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var report string
		for _, lm := range []string{"metal", "dawid-skene", "weighted", "majority"} {
			res := ablationRun(b, "youtube", func(c *core.Config) { c.LabelModel = lm })
			report += fmt.Sprintf("  %-12s acc=%.3f\n", lm, res.EndMetric)
		}
		if i == 0 {
			b.Log("\nextra label-model ablation (youtube):\n" + report)
		}
	}
}
