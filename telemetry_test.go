package datasculpt

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"datasculpt/internal/obs"
)

// TestSharedTelemetryConcurrentRuns is the ISSUE's observability -race
// test: many concurrent pipeline runs share one metrics registry and one
// JSONL trace sink. Counter totals must reconcile exactly with the
// usage the Results report, and the trace stream must contain only
// whole, parseable lines — no interleaving under concurrency.
func TestSharedTelemetryConcurrentRuns(t *testing.T) {
	const goroutines = 8

	reg := obs.NewRegistry()
	var trace bytes.Buffer
	tracer := obs.NewJSONLTracer(&trace)
	ctx := obs.NewContext(context.Background(), obs.New(tracer, reg, nil))

	var wg sync.WaitGroup
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// independent model stacks; only the telemetry is shared
			d, err := LoadDataset("youtube", 11, 0.2)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = RunContext(ctx, d, stressConfig())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if err := tracer.Err(); err != nil {
		t.Fatalf("trace sink error: %v", err)
	}

	// ground truth from the Results themselves
	var calls, promptTok, completionTok int
	var cost float64
	for _, r := range results {
		calls += r.Calls
		promptTok += r.PromptTokens
		completionTok += r.CompletionTokens
		cost += r.CostUSD
	}
	if calls == 0 || promptTok == 0 {
		t.Fatalf("runs issued no LLM calls: calls=%d promptTok=%d", calls, promptTok)
	}

	// integer counters must match the summed Result usage exactly
	exact := map[string]float64{
		"llm_calls_total":             float64(calls),
		"llm_prompt_tokens_total":     float64(promptTok),
		"llm_completion_tokens_total": float64(completionTok),
		"llm_tokens_total":            float64(promptTok + completionTok),
		"pipeline_runs_total":         goroutines,
		// base variant issues exactly one chat call per iteration, so the
		// iteration counter reconciles against the call ledger too
		"pipeline_iterations_total": float64(calls),
	}
	for name, want := range exact {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// the cost counter accumulates per-call float deltas whose addition
	// order varies across interleavings; allow last-ulp slack only
	if got := reg.CounterValue("llm_cost_usd_total"); math.Abs(got-cost) > 1e-9 {
		t.Errorf("llm_cost_usd_total = %v, want %v (Δ=%g)", got, cost, got-cost)
	}

	// every trace line is one complete JSON span
	runSpans := map[string]bool{} // span id -> is a run span
	var iterations int
	lines := bytes.Split(bytes.TrimRight(trace.Bytes(), "\n"), []byte("\n"))
	for n, line := range lines {
		var d obs.SpanData
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("trace line %d corrupt: %v\n%s", n+1, err, line)
		}
		if d.Span == "" || d.Name == "" || d.End.Before(d.Start) {
			t.Fatalf("trace line %d malformed: %+v", n+1, d)
		}
		switch d.Name {
		case "run":
			runSpans[d.Trace+"/"+d.Span] = true
		case "iteration":
			iterations++
		}
	}
	if len(runSpans) != goroutines {
		t.Errorf("run spans = %d, want %d", len(runSpans), goroutines)
	}
	if iterations != calls {
		t.Errorf("iteration spans = %d, want %d", iterations, calls)
	}
	// iteration spans hang off their goroutine's run span
	for _, line := range lines {
		var d obs.SpanData
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatal(err)
		}
		if d.Name == "iteration" && !runSpans[d.Trace+"/"+d.Parent] {
			t.Fatalf("iteration span %s has non-run parent %q", d.Span, d.Parent)
		}
	}
}

// TestTraceHierarchyTokenAttrs checks the span tree of a single run: one
// run root, iteration children carrying per-iteration token attrs that
// sum to the Result's usage, and the per-stage grandchildren underneath.
func TestTraceHierarchyTokenAttrs(t *testing.T) {
	tracer := obs.NewMemoryTracer()
	ctx := obs.NewContext(context.Background(), obs.New(tracer, nil, nil))

	res, err := RunContext(ctx, stressDataset(t), stressConfig())
	if err != nil {
		t.Fatal(err)
	}

	runs := tracer.Named("run")
	if len(runs) != 1 {
		t.Fatalf("run spans = %d, want 1", len(runs))
	}
	run := runs[0]
	if ds, _ := run.Str("dataset"); ds != "youtube" {
		t.Errorf("run dataset attr = %q, want youtube", ds)
	}
	if kept, ok := run.Int("lfs_kept"); !ok || kept != int64(res.NumLFs) {
		t.Errorf("run lfs_kept attr = %d (ok=%v), want %d", kept, ok, res.NumLFs)
	}

	iters := tracer.Named("iteration")
	if len(iters) != res.Calls {
		t.Fatalf("iteration spans = %d, want %d (one chat call each)", len(iters), res.Calls)
	}
	childCount := map[string]int{}
	for _, d := range tracer.Spans() {
		switch d.Name {
		case "select", "prompt", "parse", "filter":
			childCount[d.Name]++
		}
	}
	var promptTok, completionTok int64
	for _, it := range iters {
		if it.Parent != run.Span {
			t.Fatalf("iteration span %s not parented to run span %s", it.Span, run.Span)
		}
		p, _ := it.Int("prompt_tokens")
		c, _ := it.Int("completion_tokens")
		promptTok += p
		completionTok += c
	}
	if promptTok != int64(res.PromptTokens) || completionTok != int64(res.CompletionTokens) {
		t.Errorf("iteration token attrs sum to %d/%d, want %d/%d",
			promptTok, completionTok, res.PromptTokens, res.CompletionTokens)
	}
	// every iteration runs select, prompt and parse; filter only follows
	// a successful parse
	for _, stage := range []string{"select", "prompt", "parse"} {
		if childCount[stage] != len(iters) {
			t.Errorf("%s spans = %d, want %d", stage, childCount[stage], len(iters))
		}
	}
	if childCount["filter"] == 0 || childCount["filter"] > len(iters) {
		t.Errorf("filter spans = %d, want 1..%d", childCount["filter"], len(iters))
	}
	if got := len(tracer.Named("aggregate")); got != 1 {
		t.Errorf("aggregate spans = %d, want 1", got)
	}
}
