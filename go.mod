module datasculpt

go 1.22
