// Command datasculptd serves trained model bundles over HTTP: load the
// artifacts `datasculpt -save-bundle` runs produced, map them to
// tenants, and label texts online through the same code path — bit-
// identical results included — that the offline evaluator uses.
//
//	datasculpt -dataset youtube -save-bundle spam.json
//	datasculptd -bundle spam.json -tenant acme=spam.json -addr :8080
//	curl -s localhost:8080/v1/tenants/acme/label -d '{"text": "subscribe!", "explain": true}'
//	curl -s localhost:8080/v1/label -d '{"text": "subscribe!"}'   # default tenant
//	curl -s localhost:8080/v1/bundles                             # provenance listing
//	curl -s localhost:8080/v1/bundles/acme --data-binary @new.json # shadow-gated hot-swap
//
// With -grow-interval the daemon also keeps learning while it serves:
// a background growth loop samples served texts into a bounded
// reservoir, periodically re-runs the select→prompt→filter pipeline
// over them, and promotes the grown bundle through the shadow-gated
// hot-swap path — rolling back automatically on regression. Its state
// (-grow-state-dir) is durable JSONL: a killed daemon resumes the
// interrupted cycle and produces a byte-identical candidate.
//
//	datasculptd -bundle spam.json -grow-interval 10m -grow-state-dir /var/lib/datasculpt/growth
//	curl -s localhost:8080/v1/growth                              # growth status + cycle journal
//
// The daemon is one replica of a shardable fleet: with -replicas N and
// -replica-index I it answers only the tenants a consistent-hash ring
// assigns to shard I and redirects the rest with 421 + a shard hint
// (-peers advertises replica addresses in the hint). Incoming texts are
// coalesced into micro-batches (-max-batch, -max-wait) behind a bounded
// admission queue (-queue-depth; overload sheds 429 instead of
// queueing without bound), at most -max-resident tenant servers stay
// mapped at once, and /metrics exposes the serve_* counters,
// histograms and gauges — dimensional by tenant, outcome code and
// route — in Prometheus text format. /v1/stats reports per-tenant SLO
// windows (latency quantiles, error rate, availability burn) plus
// runtime health; -access-log, -trace-sample/-trace-slow and
// -slo-objective tune the per-request observability pipeline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/growth"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

// tenantFlags collects repeated -tenant name=path mappings.
type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*t = append(*t, v)
	return nil
}

// config is everything run needs; one struct keeps the flag surface and
// the tests in sync.
type config struct {
	bundlePath    string
	tenants       tenantFlags
	defaultTenant string
	addr          string

	maxBatch    int
	maxWait     time.Duration
	parallelism int
	queueDepth  int

	maxResident     int
	shadowAgreement float64

	replicas     int
	replicaIndex int
	peers        string

	logLevel   string
	traceOut   string
	metricsOut string
	debugAddr  string

	accessLog    bool
	traceSample  float64
	traceSlow    time.Duration
	sloObjective float64

	growInterval      time.Duration
	growStateDir      string
	growTenant        string
	growBudget        int
	growMinCorpus     int
	growSeed          int64
	growScale         float64
	growAgreement     float64
	growMaxRegression float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.bundlePath, "bundle", "", "model bundle mapped to the default tenant (produced by datasculpt -save-bundle)")
	flag.Var(&cfg.tenants, "tenant", "tenant mapping name=bundle-path (repeatable)")
	flag.StringVar(&cfg.defaultTenant, "default-tenant", "default", "tenant the bare /v1/label alias routes to")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "max texts per micro-batch")
	flag.DurationVar(&cfg.maxWait, "max-wait", 2*time.Millisecond, "max time the first text of a batch waits for company")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "featurize/predict worker goroutines per batch (0 = GOMAXPROCS, 1 = sequential; results identical)")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 0, "max texts waiting in the coalescer queue before requests shed with 429 (0 = 16*max-batch)")
	flag.IntVar(&cfg.maxResident, "max-resident", 8, "max tenants with a mapped server at once (LRU evicts beyond this)")
	flag.Float64Var(&cfg.shadowAgreement, "shadow-agreement", 0.9, "min agreement with the incumbent on recent traffic for a promotion to pass the shadow gate")
	flag.IntVar(&cfg.replicas, "replicas", 1, "replica-set size for consistent-hash tenant sharding")
	flag.IntVar(&cfg.replicaIndex, "replica-index", 0, "this replica's shard index (0..replicas-1)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated replica addresses, advertised in 421 shard hints (index i = replica i)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log verbosity: debug, info, warn, error")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "stream one JSON span per request/batch to this file")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write final metrics here on exit (Prometheus text; JSON if the path ends in .json)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address")
	flag.BoolVar(&cfg.accessLog, "access-log", false, "log one structured line per gateway request (rate-capped)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "head-sampling probability for -trace-out traces (errors and slow requests are always kept)")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 250*time.Millisecond, "keep any trace at least this slow regardless of sampling (0 disables the latch)")
	flag.Float64Var(&cfg.sloObjective, "slo-objective", 0.999, "availability target /v1/stats reports burn rates against")
	flag.DurationVar(&cfg.growInterval, "grow-interval", 0, "online growth cycle period (0 disables the growth loop)")
	flag.StringVar(&cfg.growStateDir, "grow-state-dir", "", "directory for the growth loop's durable state (journal, lineage head, cycle workspace)")
	flag.StringVar(&cfg.growTenant, "grow-tenant", "", "tenant the growth loop samples and promotes (default: -default-tenant)")
	flag.IntVar(&cfg.growBudget, "grow-budget", 8, "max LLM proposal iterations per growth cycle")
	flag.IntVar(&cfg.growMinCorpus, "grow-min-corpus", 16, "min captured texts before a growth cycle runs")
	flag.Int64Var(&cfg.growSeed, "grow-seed", 0, "seed for regenerating the growth base dataset (default: the bundle's training seed)")
	flag.Float64Var(&cfg.growScale, "grow-scale", 1, "scale for regenerating the growth base dataset")
	flag.Float64Var(&cfg.growAgreement, "grow-agreement", 0.9, "min post-promote agreement with the parent on the cycle corpus before auto-rollback")
	flag.Float64Var(&cfg.growMaxRegression, "grow-max-regression", 0.02, "max offline-metric regression a growth candidate may show before rejection")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "datasculptd:", err)
		os.Exit(1)
	}
}

func run(cfg config) (err error) {
	if cfg.bundlePath == "" && len(cfg.tenants) == 0 {
		return errors.New("at least one of -bundle and -tenant is required")
	}
	if cfg.replicas < 1 || cfg.replicaIndex < 0 || cfg.replicaIndex >= cfg.replicas {
		return fmt.Errorf("-replica-index %d out of range for -replicas %d", cfg.replicaIndex, cfg.replicas)
	}
	o, cleanup, err := obs.Setup(obs.SetupConfig{
		LogLevel:    cfg.logLevel,
		TracePath:   cfg.traceOut,
		MetricsPath: cfg.metricsOut,
		DebugAddr:   cfg.debugAddr,
	})
	if err != nil {
		return err
	}
	// The cleanup writes -metrics-out and flushes the trace sink, so it
	// must run (and be checked) even when serving failed.
	defer func() {
		if cerr := cleanup(); err == nil {
			err = cerr
		}
	}()
	if cfg.traceOut != "" && (cfg.traceSample < 1 || cfg.traceSlow > 0) {
		// Sampling makes JSONL tracing survivable at serving rates: head
		// sample at -trace-sample, always keep errors, latch anything
		// slower than -trace-slow.
		o = obs.New(obs.NewSampledTracer(o.Tracer, obs.SamplerOptions{
			Rate:       cfg.traceSample,
			KeepErrors: true,
			SlowLatch:  cfg.traceSlow,
		}), o.Metrics, o.Logger)
	}

	// The growth daemon needs the registry (to promote into) and the
	// registry needs the capture hook (to feed the daemon), so the hook
	// late-binds through an atomic pointer set once the daemon exists —
	// before the listener opens, but data-race-free regardless.
	var growPtr atomic.Pointer[growth.Daemon]
	regOpts := registry.Options{
		MaxResident:     cfg.maxResident,
		ShadowAgreement: cfg.shadowAgreement,
		Serve: serve.Options{
			MaxBatch:   cfg.maxBatch,
			MaxWait:    cfg.maxWait,
			Workers:    cfg.parallelism,
			QueueDepth: cfg.queueDepth,
		},
	}
	if cfg.growInterval > 0 {
		regOpts.Capture = func(tenant string, texts []string) {
			if d := growPtr.Load(); d != nil {
				d.Capture(tenant, texts)
			}
		}
	}
	reg := registry.New(o, regOpts)
	if cfg.bundlePath != "" {
		if err := reg.Register(cfg.defaultTenant, cfg.bundlePath); err != nil {
			return err
		}
	}
	for _, m := range cfg.tenants {
		name, path, _ := strings.Cut(m, "=")
		if err := reg.Register(name, path); err != nil {
			return err
		}
	}

	growD, err := setupGrowth(cfg, reg, o)
	if err != nil {
		reg.Close()
		return err
	}
	if growD != nil {
		growPtr.Store(growD)
	}

	var ring *registry.Ring
	if cfg.replicas > 1 {
		ring = registry.NewRing(cfg.replicas, 0)
	}
	var peers []string
	if cfg.peers != "" {
		peers = strings.Split(cfg.peers, ",")
	}
	gwOpts := registry.GatewayOptions{
		DefaultTenant: cfg.defaultTenant,
		Ring:          ring,
		SelfShard:     cfg.replicaIndex,
		Peers:         peers,
		AccessLog:     cfg.accessLog,
		SLOObjective:  cfg.sloObjective,
	}
	if growD != nil {
		gwOpts.Growth = func() any { return growD.Status() }
	}
	gw := registry.NewGateway(reg, o, gwOpts)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	o.Logger.Info("serving",
		"tenants", reg.Tenants(),
		"default_tenant", cfg.defaultTenant,
		"shard", cfg.replicaIndex,
		"replicas", cfg.replicas,
		"addr", ln.Addr().String())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if growD != nil {
		growCtx, growCancel := context.WithCancel(ctx)
		growD.Start(growCtx)
		defer func() {
			growCancel()
			growD.Close()
		}()
	}
	return serveGateway(ctx, ln, reg, gw, o)
}

// setupGrowth assembles the online growth daemon when -grow-interval is
// set: resolve the grow tenant's bundle, regenerate the base dataset it
// was trained on, and rebuild a pipeline config from its provenance.
func setupGrowth(cfg config, reg *registry.Registry, o *obs.Obs) (*growth.Daemon, error) {
	if cfg.growInterval <= 0 {
		return nil, nil
	}
	if cfg.growStateDir == "" {
		return nil, errors.New("-grow-interval requires -grow-state-dir")
	}
	tenant := cfg.growTenant
	if tenant == "" {
		tenant = cfg.defaultTenant
	}
	path := ""
	if tenant == cfg.defaultTenant && cfg.bundlePath != "" {
		path = cfg.bundlePath
	}
	for _, m := range cfg.tenants {
		name, p, _ := strings.Cut(m, "=")
		if name == tenant {
			path = p
		}
	}
	if path == "" {
		return nil, fmt.Errorf("growth tenant %q has no bundle mapping", tenant)
	}
	parent, err := bundle.Load(path)
	if err != nil {
		return nil, err
	}
	seed := cfg.growSeed
	if seed == 0 {
		seed = parent.Provenance.Seed
	}
	base, err := dataset.Load(parent.Dataset.Name, seed, cfg.growScale)
	if err != nil {
		return nil, fmt.Errorf("regenerating growth base dataset: %w", err)
	}
	pcfg := core.DefaultConfig(growthVariant(parent.Provenance.Method))
	pcfg.Model = parent.Provenance.Model
	pcfg.Seed = parent.Provenance.Seed
	if parent.Provenance.Iterations > 0 {
		pcfg.Iterations = parent.Provenance.Iterations
	}
	return growth.New(growth.Config{
		Tenant:             tenant,
		Registry:           reg,
		Base:               base,
		Parent:             parent,
		Pipeline:           pcfg,
		StateDir:           cfg.growStateDir,
		Interval:           cfg.growInterval,
		Budget:             cfg.growBudget,
		MinCorpus:          cfg.growMinCorpus,
		MinVerifyAgreement: cfg.growAgreement,
		MaxRegression:      cfg.growMaxRegression,
		Obs:                o,
	})
}

// growthVariant recovers the pipeline variant from a bundle's method
// string ("datasculpt-base", "datasculpt-cot-grown", ...), defaulting
// to the base variant for anything unrecognized.
func growthVariant(method string) core.Variant {
	name := strings.TrimSuffix(strings.TrimPrefix(method, "datasculpt-"), "-grown")
	for _, v := range []core.Variant{core.VariantBase, core.VariantCoT, core.VariantSC, core.VariantKATE} {
		if name == string(v) {
			return v
		}
	}
	return core.VariantBase
}

// serveGateway serves the gateway on ln until ctx is cancelled, then
// shuts down gracefully: stop accepting connections, let in-flight
// requests finish, drain every tenant's coalescer queue.
func serveGateway(ctx context.Context, ln net.Listener, reg *registry.Registry, gw *registry.Gateway, o *obs.Obs) error {
	httpSrv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		reg.Close()
		return err
	case <-ctx.Done():
	}
	o.Logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		reg.Close()
		return err
	}
	reg.Close()
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
