// Command datasculptd serves trained model bundles over HTTP: load the
// artifacts `datasculpt -save-bundle` runs produced, map them to
// tenants, and label texts online through the same code path — bit-
// identical results included — that the offline evaluator uses.
//
//	datasculpt -dataset youtube -save-bundle spam.json
//	datasculptd -bundle spam.json -tenant acme=spam.json -addr :8080
//	curl -s localhost:8080/v1/tenants/acme/label -d '{"text": "subscribe!", "explain": true}'
//	curl -s localhost:8080/v1/label -d '{"text": "subscribe!"}'   # default tenant
//	curl -s localhost:8080/v1/bundles                             # provenance listing
//	curl -s localhost:8080/v1/bundles/acme --data-binary @new.json # shadow-gated hot-swap
//
// The daemon is one replica of a shardable fleet: with -replicas N and
// -replica-index I it answers only the tenants a consistent-hash ring
// assigns to shard I and redirects the rest with 421 + a shard hint
// (-peers advertises replica addresses in the hint). Incoming texts are
// coalesced into micro-batches (-max-batch, -max-wait) behind a bounded
// admission queue (-queue-depth; overload sheds 429 instead of
// queueing without bound), at most -max-resident tenant servers stay
// mapped at once, and /metrics exposes the serve_* counters,
// histograms and gauges — dimensional by tenant, outcome code and
// route — in Prometheus text format. /v1/stats reports per-tenant SLO
// windows (latency quantiles, error rate, availability burn) plus
// runtime health; -access-log, -trace-sample/-trace-slow and
// -slo-objective tune the per-request observability pipeline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

// tenantFlags collects repeated -tenant name=path mappings.
type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*t = append(*t, v)
	return nil
}

// config is everything run needs; one struct keeps the flag surface and
// the tests in sync.
type config struct {
	bundlePath    string
	tenants       tenantFlags
	defaultTenant string
	addr          string

	maxBatch    int
	maxWait     time.Duration
	parallelism int
	queueDepth  int

	maxResident     int
	shadowAgreement float64

	replicas     int
	replicaIndex int
	peers        string

	logLevel   string
	traceOut   string
	metricsOut string
	debugAddr  string

	accessLog    bool
	traceSample  float64
	traceSlow    time.Duration
	sloObjective float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.bundlePath, "bundle", "", "model bundle mapped to the default tenant (produced by datasculpt -save-bundle)")
	flag.Var(&cfg.tenants, "tenant", "tenant mapping name=bundle-path (repeatable)")
	flag.StringVar(&cfg.defaultTenant, "default-tenant", "default", "tenant the bare /v1/label alias routes to")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "max texts per micro-batch")
	flag.DurationVar(&cfg.maxWait, "max-wait", 2*time.Millisecond, "max time the first text of a batch waits for company")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "featurize/predict worker goroutines per batch (0 = GOMAXPROCS, 1 = sequential; results identical)")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 0, "max texts waiting in the coalescer queue before requests shed with 429 (0 = 16*max-batch)")
	flag.IntVar(&cfg.maxResident, "max-resident", 8, "max tenants with a mapped server at once (LRU evicts beyond this)")
	flag.Float64Var(&cfg.shadowAgreement, "shadow-agreement", 0.9, "min agreement with the incumbent on recent traffic for a promotion to pass the shadow gate")
	flag.IntVar(&cfg.replicas, "replicas", 1, "replica-set size for consistent-hash tenant sharding")
	flag.IntVar(&cfg.replicaIndex, "replica-index", 0, "this replica's shard index (0..replicas-1)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated replica addresses, advertised in 421 shard hints (index i = replica i)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log verbosity: debug, info, warn, error")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "stream one JSON span per request/batch to this file")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write final metrics here on exit (Prometheus text; JSON if the path ends in .json)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address")
	flag.BoolVar(&cfg.accessLog, "access-log", false, "log one structured line per gateway request (rate-capped)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "head-sampling probability for -trace-out traces (errors and slow requests are always kept)")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 250*time.Millisecond, "keep any trace at least this slow regardless of sampling (0 disables the latch)")
	flag.Float64Var(&cfg.sloObjective, "slo-objective", 0.999, "availability target /v1/stats reports burn rates against")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "datasculptd:", err)
		os.Exit(1)
	}
}

func run(cfg config) (err error) {
	if cfg.bundlePath == "" && len(cfg.tenants) == 0 {
		return errors.New("at least one of -bundle and -tenant is required")
	}
	if cfg.replicas < 1 || cfg.replicaIndex < 0 || cfg.replicaIndex >= cfg.replicas {
		return fmt.Errorf("-replica-index %d out of range for -replicas %d", cfg.replicaIndex, cfg.replicas)
	}
	o, cleanup, err := obs.Setup(obs.SetupConfig{
		LogLevel:    cfg.logLevel,
		TracePath:   cfg.traceOut,
		MetricsPath: cfg.metricsOut,
		DebugAddr:   cfg.debugAddr,
	})
	if err != nil {
		return err
	}
	// The cleanup writes -metrics-out and flushes the trace sink, so it
	// must run (and be checked) even when serving failed.
	defer func() {
		if cerr := cleanup(); err == nil {
			err = cerr
		}
	}()
	if cfg.traceOut != "" && (cfg.traceSample < 1 || cfg.traceSlow > 0) {
		// Sampling makes JSONL tracing survivable at serving rates: head
		// sample at -trace-sample, always keep errors, latch anything
		// slower than -trace-slow.
		o = obs.New(obs.NewSampledTracer(o.Tracer, obs.SamplerOptions{
			Rate:       cfg.traceSample,
			KeepErrors: true,
			SlowLatch:  cfg.traceSlow,
		}), o.Metrics, o.Logger)
	}

	reg := registry.New(o, registry.Options{
		MaxResident:     cfg.maxResident,
		ShadowAgreement: cfg.shadowAgreement,
		Serve: serve.Options{
			MaxBatch:   cfg.maxBatch,
			MaxWait:    cfg.maxWait,
			Workers:    cfg.parallelism,
			QueueDepth: cfg.queueDepth,
		},
	})
	if cfg.bundlePath != "" {
		if err := reg.Register(cfg.defaultTenant, cfg.bundlePath); err != nil {
			return err
		}
	}
	for _, m := range cfg.tenants {
		name, path, _ := strings.Cut(m, "=")
		if err := reg.Register(name, path); err != nil {
			return err
		}
	}

	var ring *registry.Ring
	if cfg.replicas > 1 {
		ring = registry.NewRing(cfg.replicas, 0)
	}
	var peers []string
	if cfg.peers != "" {
		peers = strings.Split(cfg.peers, ",")
	}
	gw := registry.NewGateway(reg, o, registry.GatewayOptions{
		DefaultTenant: cfg.defaultTenant,
		Ring:          ring,
		SelfShard:     cfg.replicaIndex,
		Peers:         peers,
		AccessLog:     cfg.accessLog,
		SLOObjective:  cfg.sloObjective,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	o.Logger.Info("serving",
		"tenants", reg.Tenants(),
		"default_tenant", cfg.defaultTenant,
		"shard", cfg.replicaIndex,
		"replicas", cfg.replicas,
		"addr", ln.Addr().String())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveGateway(ctx, ln, reg, gw, o)
}

// serveGateway serves the gateway on ln until ctx is cancelled, then
// shuts down gracefully: stop accepting connections, let in-flight
// requests finish, drain every tenant's coalescer queue.
func serveGateway(ctx context.Context, ln net.Listener, reg *registry.Registry, gw *registry.Gateway, o *obs.Obs) error {
	httpSrv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		reg.Close()
		return err
	case <-ctx.Done():
	}
	o.Logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		reg.Close()
		return err
	}
	reg.Close()
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
