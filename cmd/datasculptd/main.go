// Command datasculptd serves a trained model bundle over HTTP: load the
// artifact a `datasculpt -save-bundle` run produced, and label texts
// online through the same code path — bit-identical results included —
// that the offline evaluator uses.
//
//	datasculpt -dataset youtube -save-bundle model.json
//	datasculptd -bundle model.json -addr :8080
//	curl -s localhost:8080/v1/label -d '{"text": "subscribe to my channel!", "explain": true}'
//
// Incoming texts are coalesced into micro-batches (-max-batch, -max-wait)
// so concurrent load amortizes the parallel featurize/predict sweep
// instead of paying it per request. /healthz reports liveness plus the
// served bundle's provenance; /metrics exposes the serve_* counters and
// histograms in Prometheus text format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

func main() {
	bundlePath := flag.String("bundle", "", "model bundle to serve (required; produced by datasculpt -save-bundle)")
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 64, "max texts per micro-batch")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "max time the first text of a batch waits for company")
	parallelism := flag.Int("parallelism", 0, "featurize/predict worker goroutines per batch (0 = GOMAXPROCS, 1 = sequential; results identical)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	traceOut := flag.String("trace-out", "", "stream one JSON span per request/batch to this file")
	metricsOut := flag.String("metrics-out", "", "write final metrics here on exit (Prometheus text; JSON if the path ends in .json)")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address")
	flag.Parse()

	if err := run(*bundlePath, *addr, *maxBatch, *maxWait, *parallelism,
		*logLevel, *traceOut, *metricsOut, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "datasculptd:", err)
		os.Exit(1)
	}
}

func run(bundlePath, addr string, maxBatch int, maxWait time.Duration, parallelism int,
	logLevel, traceOut, metricsOut, debugAddr string) (err error) {
	if bundlePath == "" {
		return errors.New("-bundle is required")
	}
	o, cleanup, err := obs.Setup(obs.SetupConfig{
		LogLevel:    logLevel,
		TracePath:   traceOut,
		MetricsPath: metricsOut,
		DebugAddr:   debugAddr,
	})
	if err != nil {
		return err
	}
	// The cleanup writes -metrics-out and flushes the trace sink, so it
	// must run (and be checked) even when serving failed.
	defer func() {
		if cerr := cleanup(); err == nil {
			err = cerr
		}
	}()

	b, err := bundle.Load(bundlePath)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	o.Logger.Info("serving bundle",
		"bundle", bundlePath,
		"dataset", b.Dataset.Name,
		"method", b.Provenance.Method,
		"lfs", len(b.LFs),
		"config_hash", b.Provenance.ConfigHash,
		"addr", ln.Addr().String())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveBundle(ctx, ln, b, o, serve.Options{
		MaxBatch: maxBatch,
		MaxWait:  maxWait,
		Workers:  parallelism,
	})
}

// serveBundle serves b on ln until ctx is cancelled, then shuts down
// gracefully: stop accepting connections, let in-flight requests finish,
// drain the coalescer queue.
func serveBundle(ctx context.Context, ln net.Listener, b *bundle.Bundle, o *obs.Obs, opts serve.Options) error {
	srv, err := serve.New(b, o, opts)
	if err != nil {
		ln.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	o.Logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		srv.Close()
		return err
	}
	srv.Close()
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
