package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

// trainBundle produces a small servable bundle file, the way a
// `datasculpt -save-bundle` run would.
func trainBundle(t *testing.T) string {
	t.Helper()
	d, err := dataset.Load("youtube", 11, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Iterations = 10
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	res, err := core.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

// startDaemon boots the daemon's serve loop on a loopback listener with
// the given tenants registered, and returns the base URL plus a
// shutdown func that asserts graceful exit.
func startDaemon(t *testing.T, reg *registry.Registry, gwOpts registry.GatewayOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := registry.NewGateway(reg, obs.Default(), gwOpts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveGateway(ctx, ln, reg, gw, obs.Default()) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve loop: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("graceful shutdown timed out")
		}
	})
	return "http://" + ln.Addr().String()
}

// TestDaemonEndToEnd labels over real HTTP through both the bare alias
// and a tenant-scoped route, lists bundles, promotes an upload, rolls
// it back, and shuts the daemon down gracefully the way a signal would.
func TestDaemonEndToEnd(t *testing.T) {
	path := trainBundle(t)
	reg := registry.New(obs.Default(), registry.Options{Serve: serve.Options{Workers: 2}})
	if err := reg.Register("default", path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("acme", path); err != nil {
		t.Fatal(err)
	}
	base := startDaemon(t, reg, registry.GatewayOptions{})

	for _, route := range []string{"/v1/label", "/v1/tenants/acme/label"} {
		resp, err := http.Post(base+route, "application/json",
			strings.NewReader(`{"texts": ["subscribe to my channel", "great song"], "explain": true}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Predictions []serve.Prediction `json:"predictions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Predictions) != 2 {
			t.Fatalf("%s: status %d, %d predictions", route, resp.StatusCode, len(out.Predictions))
		}
		for _, p := range out.Predictions {
			if len(p.Proba) != 2 || p.Class == "" {
				t.Errorf("%s: prediction %+v", route, p)
			}
		}
	}

	resp, err := http.Get(base + "/v1/bundles")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Bundles []registry.Info `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Bundles) != 2 || listing.Bundles[0].Tenant != "default" {
		t.Fatalf("bundles listing: %+v", listing)
	}

	// Hot-swap promote the same artifact (agreement 1.0 passes the
	// gate), then roll back.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/bundles/acme", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	var rep registry.PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Generation != 1 {
		t.Fatalf("promote: status %d, report %+v", resp.StatusCode, rep)
	}
	resp, err = http.Post(base+"/v1/bundles/acme/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Tenants != 2 {
		t.Errorf("health: %+v", health)
	}
}

func TestRunErrors(t *testing.T) {
	base := config{addr: ":0", logLevel: "warn", replicas: 1}
	if err := run(base); err == nil {
		t.Error("no bundle mapping accepted")
	}
	cfg := base
	cfg.bundlePath = filepath.Join(t.TempDir(), "nope.json")
	if err := run(cfg); err == nil {
		t.Error("nonexistent bundle accepted")
	}
	cfg = base
	cfg.bundlePath = trainBundle(t)
	cfg.logLevel = "not-a-level"
	if err := run(cfg); err == nil {
		t.Error("bad log level accepted")
	}
	cfg = base
	cfg.bundlePath = trainBundle(t)
	cfg.replicas = 2
	cfg.replicaIndex = 2
	if err := run(cfg); err == nil {
		t.Error("out-of-range replica index accepted")
	}
	cfg = base
	cfg.tenants = tenantFlags{"acme"} // no '='; flag.Var would reject, run sees it raw
	if err := run(cfg); err == nil {
		t.Error("unparseable tenant mapping accepted")
	}
}

func TestTenantFlag(t *testing.T) {
	var tf tenantFlags
	if err := tf.Set("acme=/tmp/a.json"); err != nil {
		t.Fatal(err)
	}
	if err := tf.Set("no-equals"); err == nil {
		t.Error("mapping without '=' accepted")
	}
	if got := tf.String(); got != "acme=/tmp/a.json" {
		t.Errorf("String() = %q", got)
	}
}
