package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

// trainBundle produces a small servable bundle file, the way a
// `datasculpt -save-bundle` run would.
func trainBundle(t *testing.T) string {
	t.Helper()
	d, err := dataset.Load("youtube", 11, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Iterations = 10
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	res, err := core.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonEndToEnd boots the daemon's serve loop on a loopback
// listener, labels through it over real HTTP, and shuts it down
// gracefully the way a signal would.
func TestDaemonEndToEnd(t *testing.T) {
	path := trainBundle(t)
	b, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveBundle(ctx, ln, b, obs.Default(), serve.Options{Workers: 2})
	}()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/v1/label", "application/json",
		strings.NewReader(`{"texts": ["subscribe to my channel", "great song"], "explain": true}`))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Predictions []serve.Prediction `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Predictions) != 2 {
		t.Fatalf("status %d, %d predictions", resp.StatusCode, len(out.Predictions))
	}
	for _, p := range out.Predictions {
		if len(p.Proba) != 2 || p.Class == "" {
			t.Errorf("prediction %+v", p)
		}
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve loop: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("graceful shutdown timed out")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", ":0", 0, 0, 0, "warn", "", "", ""); err == nil {
		t.Error("missing -bundle accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.json"), ":0", 0, 0, 0, "warn", "", "", ""); err == nil {
		t.Error("nonexistent bundle accepted")
	}
	if err := run(trainBundle(t), ":0", 0, 0, 0, "not-a-level", "", "", ""); err == nil {
		t.Error("bad log level accepted")
	}
}

func TestServeBundleRejectsInvalid(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := serveBundle(context.Background(), ln, &bundle.Bundle{}, obs.Default(), serve.Options{}); err == nil {
		t.Error("empty bundle accepted")
	}
}
