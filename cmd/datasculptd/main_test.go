package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/growth"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

// trainBundle produces a small servable bundle file, the way a
// `datasculpt -save-bundle` run would.
func trainBundle(t *testing.T) string {
	t.Helper()
	d, err := dataset.Load("youtube", 11, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Iterations = 10
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	res, err := core.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

// startDaemon boots the daemon's serve loop on a loopback listener with
// the given tenants registered, and returns the base URL plus a
// shutdown func that asserts graceful exit.
func startDaemon(t *testing.T, reg *registry.Registry, gwOpts registry.GatewayOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := registry.NewGateway(reg, obs.Default(), gwOpts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveGateway(ctx, ln, reg, gw, obs.Default()) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve loop: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("graceful shutdown timed out")
		}
	})
	return "http://" + ln.Addr().String()
}

// TestDaemonEndToEnd labels over real HTTP through both the bare alias
// and a tenant-scoped route, lists bundles, promotes an upload, rolls
// it back, and shuts the daemon down gracefully the way a signal would.
func TestDaemonEndToEnd(t *testing.T) {
	path := trainBundle(t)
	reg := registry.New(obs.Default(), registry.Options{Serve: serve.Options{Workers: 2}})
	if err := reg.Register("default", path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("acme", path); err != nil {
		t.Fatal(err)
	}
	base := startDaemon(t, reg, registry.GatewayOptions{})

	for _, route := range []string{"/v1/label", "/v1/tenants/acme/label"} {
		resp, err := http.Post(base+route, "application/json",
			strings.NewReader(`{"texts": ["subscribe to my channel", "great song"], "explain": true}`))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Predictions []serve.Prediction `json:"predictions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Predictions) != 2 {
			t.Fatalf("%s: status %d, %d predictions", route, resp.StatusCode, len(out.Predictions))
		}
		for _, p := range out.Predictions {
			if len(p.Proba) != 2 || p.Class == "" {
				t.Errorf("%s: prediction %+v", route, p)
			}
		}
	}

	resp, err := http.Get(base + "/v1/bundles")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Bundles []registry.Info `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Bundles) != 2 || listing.Bundles[0].Tenant != "default" {
		t.Fatalf("bundles listing: %+v", listing)
	}

	// Hot-swap promote the same artifact (agreement 1.0 passes the
	// gate), then roll back.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/bundles/acme", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	var rep registry.PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Generation != 1 {
		t.Fatalf("promote: status %d, report %+v", resp.StatusCode, rep)
	}
	resp, err = http.Post(base+"/v1/bundles/acme/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Tenants != 2 {
		t.Errorf("health: %+v", health)
	}
}

// TestDaemonGrowthEndToEnd is the serve-and-keep-learning smoke test
// (`make grow-smoke`): boot the daemon with the growth loop wired the
// way run() wires it, label real traffic over HTTP so the capture hook
// feeds the reservoir, drive one growth cycle, and watch /v1/growth
// report the promoted lineage.
func TestDaemonGrowthEndToEnd(t *testing.T) {
	path := trainBundle(t)
	cfg := config{
		bundlePath:    path,
		defaultTenant: "default",
		growInterval:  time.Hour, // loop armed but driven manually below
		growStateDir:  t.TempDir(),
		growBudget:    3, growMinCorpus: 4, growScale: 0.3,
		growAgreement: 0.9, growMaxRegression: 0.02,
	}

	var growPtr atomic.Pointer[growth.Daemon]
	reg := registry.New(obs.Default(), registry.Options{
		Serve: serve.Options{Workers: 2},
		Capture: func(tenant string, texts []string) {
			if d := growPtr.Load(); d != nil {
				d.Capture(tenant, texts)
			}
		},
	})
	if err := reg.Register("default", path); err != nil {
		t.Fatal(err)
	}
	growD, err := setupGrowth(cfg, reg, obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	growPtr.Store(growD)
	base := startDaemon(t, reg, registry.GatewayOptions{
		DefaultTenant: "default",
		Growth:        func() any { return growD.Status() },
	})

	texts := []string{
		"subscribe to my channel for free prizes",
		"click this link to win an iphone",
		"what a lovely performance",
		"this song never gets old",
		"check out my profile for cheap followers",
		"the harmonies in the bridge are beautiful",
	}
	body, _ := json.Marshal(map[string]any{"texts": texts})
	resp, err := http.Post(base+"/v1/label", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label status %d", resp.StatusCode)
	}

	getStatus := func() growth.Status {
		t.Helper()
		resp, err := http.Get(base + "/v1/growth")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("growth status %d", resp.StatusCode)
		}
		var st growth.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := getStatus()
	if st.Tenant != "default" || st.Captured != len(texts) {
		t.Fatalf("pre-cycle status %+v, want %d captured for tenant default", st, len(texts))
	}

	rec, err := growD.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.CorpusLen != len(texts) {
		t.Fatalf("cycle record %+v", rec)
	}
	st = getStatus()
	if st.Stats.Cycles != 1 || st.LastCycle == nil || st.LastCycle.Outcome != rec.Outcome {
		t.Fatalf("post-cycle status %+v", st)
	}
	if rec.Outcome == growth.OutcomePromoted && st.GrowthCycle != 1 {
		t.Fatalf("promoted cycle did not advance the lineage: %+v", st)
	}

	// The grown tenant still serves after promotion/rollback.
	resp, err = http.Post(base+"/v1/label", "application/json",
		strings.NewReader(`{"text": "one more comment"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cycle label status %d", resp.StatusCode)
	}
}

func TestRunErrors(t *testing.T) {
	base := config{addr: ":0", logLevel: "warn", replicas: 1}
	if err := run(base); err == nil {
		t.Error("no bundle mapping accepted")
	}
	cfg := base
	cfg.bundlePath = filepath.Join(t.TempDir(), "nope.json")
	if err := run(cfg); err == nil {
		t.Error("nonexistent bundle accepted")
	}
	cfg = base
	cfg.bundlePath = trainBundle(t)
	cfg.logLevel = "not-a-level"
	if err := run(cfg); err == nil {
		t.Error("bad log level accepted")
	}
	cfg = base
	cfg.bundlePath = trainBundle(t)
	cfg.replicas = 2
	cfg.replicaIndex = 2
	if err := run(cfg); err == nil {
		t.Error("out-of-range replica index accepted")
	}
	cfg = base
	cfg.tenants = tenantFlags{"acme"} // no '='; flag.Var would reject, run sees it raw
	if err := run(cfg); err == nil {
		t.Error("unparseable tenant mapping accepted")
	}
	cfg = base
	cfg.bundlePath = trainBundle(t)
	cfg.growInterval = time.Minute // no -grow-state-dir
	if err := run(cfg); err == nil {
		t.Error("growth without a state dir accepted")
	}
	cfg.growStateDir = t.TempDir()
	cfg.growTenant = "ghost" // no bundle mapping
	if err := run(cfg); err == nil {
		t.Error("growth tenant without a bundle mapping accepted")
	}
}

func TestTenantFlag(t *testing.T) {
	var tf tenantFlags
	if err := tf.Set("acme=/tmp/a.json"); err != nil {
		t.Fatal(err)
	}
	if err := tf.Set("no-equals"); err == nil {
		t.Error("mapping without '=' accepted")
	}
	if got := tf.String(); got != "acme=/tmp/a.json" {
		t.Errorf("String() = %q", got)
	}
}
