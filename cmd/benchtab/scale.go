package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// This file renders BENCH_scale.json — the `make bench-scale` output in
// standard Go benchmark text format — as the out-of-core scaling
// summary: exact vs LSH KATE retrieval, materialized vs streamed
// ingestion, and the resident vs spilling vote matrix. Rendering also
// validates the acceptance floor of the scale work (>=5x retrieval
// speedup at recall@10 >= 0.9), so the ci smoke target fails if a
// regressed benchmark file is ever committed.

// scaleSpeedupFloor and scaleRecallFloor are the committed acceptance
// thresholds for the ANN retrieval path at 100x scale.
const (
	scaleSpeedupFloor = 5.0
	scaleRecallFloor  = 0.9
)

// benchLine is one parsed Go benchmark result: the measured metrics
// keyed by unit (ns/op, ns/query, peak-MB, recall@10, spills, ...).
type benchLine map[string]float64

// parseGoBench extracts Benchmark* lines from a Go benchmark text file,
// keyed by benchmark name with any -GOMAXPROCS suffix stripped.
func parseGoBench(path string) (map[string]benchLine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]benchLine)
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := make(benchLine)
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			m[f[i+1]] = v
		}
		out[name] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// metric fetches one unit of one benchmark, erroring on absence so a
// truncated BENCH_scale.json fails loudly instead of rendering zeros.
func metric(benches map[string]benchLine, name, unit string) (float64, error) {
	b, ok := benches[name]
	if !ok {
		return 0, fmt.Errorf("benchmark %s missing", name)
	}
	v, ok := b[unit]
	if !ok {
		return 0, fmt.Errorf("benchmark %s has no %q metric", name, unit)
	}
	return v, nil
}

// renderScale renders the scale-benchmark file and enforces the
// retrieval acceptance floor.
func renderScale(path string) (string, error) {
	benches, err := parseGoBench(path)
	if err != nil {
		return "", err
	}
	exactNS, err := metric(benches, "BenchmarkScaleKATEExact", "ns/query")
	if err != nil {
		return "", err
	}
	annNS, err := metric(benches, "BenchmarkScaleKATEANN", "ns/query")
	if err != nil {
		return "", err
	}
	recall, err := metric(benches, "BenchmarkScaleKATEANN", "recall@10")
	if err != nil {
		return "", err
	}
	matMB, err := metric(benches, "BenchmarkScaleIngestMaterialized", "peak-MB")
	if err != nil {
		return "", err
	}
	strMB, err := metric(benches, "BenchmarkScaleIngestStreamed", "peak-MB")
	if err != nil {
		return "", err
	}
	resMB, err := metric(benches, "BenchmarkScaleVoteMatrixResident", "peak-MB")
	if err != nil {
		return "", err
	}
	spillMB, err := metric(benches, "BenchmarkScaleVoteMatrixSpill", "peak-MB")
	if err != nil {
		return "", err
	}
	spills, err := metric(benches, "BenchmarkScaleVoteMatrixSpill", "spills")
	if err != nil {
		return "", err
	}

	speedup := exactNS / annNS
	var sb strings.Builder
	fmt.Fprintf(&sb, "Out-of-core scale benchmarks (%s)\n", path)
	fmt.Fprintf(&sb, "100x Youtube: 158,600 train / 12,000 validation documents\n\n")
	fmt.Fprintf(&sb, "  KATE retrieval (12,000-doc pool, k=10)\n")
	fmt.Fprintf(&sb, "    exact cosine scan   %8.2f ms/query\n", exactNS/1e6)
	fmt.Fprintf(&sb, "    LSH + exact rerank  %8.2f ms/query   %.1fx speedup, recall@10 %.3f\n",
		annNS/1e6, speedup, recall)
	fmt.Fprintf(&sb, "  train-split ingestion (JSONL, chunk 1024)\n")
	fmt.Fprintf(&sb, "    materialized        %8.1f peak MB\n", matMB)
	fmt.Fprintf(&sb, "    streamed two-pass   %8.1f peak MB   %.1fx lower\n", strMB, matMB/strMB)
	fmt.Fprintf(&sb, "  vote matrix (158,600 x 120)\n")
	fmt.Fprintf(&sb, "    fully resident      %8.1f peak MB\n", resMB)
	fmt.Fprintf(&sb, "    1 MB spill budget   %8.1f peak MB   %.0f column evictions\n", spillMB, spills)

	if speedup < scaleSpeedupFloor {
		return "", fmt.Errorf("%s: KATE ANN speedup %.2fx is below the %.0fx floor", path, speedup, scaleSpeedupFloor)
	}
	if recall < scaleRecallFloor {
		return "", fmt.Errorf("%s: KATE ANN recall@10 %.3f is below the %.2f floor", path, recall, scaleRecallFloor)
	}
	return sb.String(), nil
}
