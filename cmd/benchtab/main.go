// Command benchtab regenerates every table and figure of the paper's
// evaluation section:
//
//	benchtab -table 1          # dataset statistics
//	benchtab -table 2          # main comparison (LF stats + end model)
//	benchtab -figure 3         # token usage
//	benchtab -figure 4         # API cost
//	benchtab -table 3          # LLM ablation
//	benchtab -table 4          # sampler ablation
//	benchtab -table 5          # filter ablation
//	benchtab -all              # everything
//
// By default it runs the paper's protocol (full-size datasets, 5 seeds,
// 50 iterations); -scale and -seeds trade fidelity for speed. Figures 3
// and 4 reuse the Table 2 runs, so `-all` computes them once.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"datasculpt/internal/experiment"
	"datasculpt/internal/obs"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-5)")
	figure := flag.Int("figure", 0, "figure number to regenerate (3 or 4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	seeds := flag.Int("seeds", 5, "random seeds per configuration")
	scale := flag.Float64("scale", 1.0, "dataset scale in (0,1]")
	iterations := flag.Int("iterations", 50, "DataSculpt query iterations")
	model := flag.String("model", "gpt-3.5", "default LLM profile")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all)")
	workers := flag.Int("workers", 0, "concurrent grid cells (0 = GOMAXPROCS, 1 = serial; results identical)")
	parallelism := flag.Int("parallelism", 0, "evaluation-engine workers inside each cell (0 = 1, serial per cell; results identical)")
	keepGoing := flag.Bool("keep-going", false, "record per-cell failures in the grid instead of aborting the sweep")
	checkpoint := flag.String("checkpoint", "", "append each completed grid cell to this JSONL file (resumable with -resume)")
	resume := flag.String("resume", "", "skip grid cells already recorded in this checkpoint file (may equal -checkpoint)")
	maxFailedIters := flag.Int("max-failed-iterations", 0, "per-run iteration failure budget (0 = strict, -1 = unlimited)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	compare := flag.Bool("compare", true, "print paper-vs-reproduction averages")
	markdown := flag.String("markdown", "", "also write a markdown report (EXPERIMENTS.md format) to this path; implies -all")
	renderScalePath := flag.String("render-scale", "", "render a BENCH_scale.json (make bench-scale output) and validate its retrieval floors, then exit")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	traceOut := flag.String("trace-out", "", "stream one JSON span per line (cell > run > iteration > stage) to this file")
	metricsOut := flag.String("metrics-out", "", "write final metrics here on exit (Prometheus text; JSON if the path ends in .json)")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address; watch grid_cells_done_total for live sweep progress")
	flag.Parse()

	opts := experiment.Options{
		Seeds:               *seeds,
		Scale:               *scale,
		Iterations:          *iterations,
		Model:               *model,
		Workers:             *workers,
		Parallelism:         *parallelism,
		KeepGoing:           *keepGoing,
		Checkpoint:          *checkpoint,
		ResumeFrom:          *resume,
		MaxFailedIterations: *maxFailedIters,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}

	if *renderScalePath != "" {
		out, err := renderScale(*renderScalePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	if *markdown != "" {
		*all = true
	}
	o, cleanup, err := obs.Setup(obs.SetupConfig{
		LogLevel:    *logLevel,
		TracePath:   *traceOut,
		MetricsPath: *metricsOut,
		DebugAddr:   *debugAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	opts.Obs = o
	// Ctrl-C cancels every in-flight cell instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runErr := run(ctx, opts, *table, *figure, *all, *compare, *markdown)
	// The cleanup writes -metrics-out and flushes the trace sink, so it
	// must run (and be checked) even when the sweep itself failed.
	if cerr := cleanup(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts experiment.Options, table, figure int, all, compare bool, markdown string) error {
	var main, llms, samplers, filters *experiment.Grid
	needMain := all || table == 2 || figure == 3 || figure == 4

	if all || table == 1 {
		out, err := experiment.RenderTable1(opts)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if needMain {
		g, err := experiment.MainResultsContext(ctx, opts)
		if err != nil {
			return err
		}
		main = g
	}
	if all || table == 2 {
		fmt.Println(experiment.RenderGrid(main))
		if compare {
			fmt.Println(experiment.RenderPaperComparison(main, experiment.PaperTable2))
		}
	}
	if all || figure == 3 {
		fmt.Println(experiment.RenderFigure3(main))
	}
	if all || figure == 4 {
		fmt.Println(experiment.RenderFigure4(main))
	}
	if all || table == 3 {
		g, err := experiment.LLMAblationContext(ctx, opts)
		if err != nil {
			return err
		}
		llms = g
		fmt.Println(experiment.RenderGrid(g))
		if compare {
			fmt.Println(experiment.RenderPaperComparison(g, experiment.PaperTable3))
		}
	}
	if all || table == 4 {
		g, err := experiment.SamplerAblationContext(ctx, opts)
		if err != nil {
			return err
		}
		samplers = g
		fmt.Println(experiment.RenderGrid(g))
		if compare {
			fmt.Println(experiment.RenderPaperComparison(g, experiment.PaperTable4))
		}
	}
	if all || table == 5 {
		g, err := experiment.FilterAblationContext(ctx, opts)
		if err != nil {
			return err
		}
		filters = g
		fmt.Println(experiment.RenderGrid(g))
		if compare {
			fmt.Println(experiment.RenderPaperComparison(g, experiment.PaperTable5))
		}
	}
	if markdown != "" {
		report := experiment.MarkdownReport(opts, main, llms, samplers, filters)
		if err := os.WriteFile(markdown, []byte(report), 0o644); err != nil {
			return fmt.Errorf("writing markdown report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", markdown)
	}
	if !all && table == 0 && figure == 0 {
		return fmt.Errorf("nothing to do: pass -table N, -figure N or -all")
	}
	return nil
}
