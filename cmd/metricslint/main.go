// Command metricslint validates Prometheus text-exposition output with
// the conformance checks a real scraper enforces (see obs.LintPrometheus).
//
//	metricslint                         # self-test the repo's own exporter
//	metricslint -addr localhost:8080    # scrape a live daemon's /metrics
//
// With -addr it scrapes the given host's /metrics (a full URL is also
// accepted) and exits nonzero on any conformance problem — `make
// metrics-lint` runs the self-test in CI so exposition-format drift
// fails the build instead of silently mangling a dashboard.
//
// The self-test boots an in-process HTTP server whose registry exercises
// every exporter shape: scalar counters/gauges/histograms, dimensional
// vectors with escaped label values and a forced cardinality-overflow
// fold, and the Go runtime gauges — then scrapes and lints it like an
// external Prometheus would.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"datasculpt/internal/obs"
)

func main() {
	addr := flag.String("addr", "", "scrape this host's /metrics (default: in-process self-test)")
	flag.Parse()
	problems, err := run(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "metricslint:", p)
		}
		os.Exit(1)
	}
	fmt.Println("metricslint: ok")
}

// run lints either a live endpoint (addr non-empty) or the package's own
// exporter via an in-process server.
func run(addr string) ([]string, error) {
	if addr != "" {
		return lintURL(metricsURL(addr))
	}
	reg := selfTestRegistry()
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.SetRuntimeGauges(reg)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w) //nolint:errcheck — client went away
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln) //nolint:errcheck — shut down below
	defer srv.Close()
	return lintURL("http://" + ln.Addr().String() + "/metrics")
}

// metricsURL normalizes -addr: bare host:port gets scheme and path.
func metricsURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if !strings.Contains(strings.TrimPrefix(addr, "http://"), "/") {
		addr += "/metrics"
	}
	return addr
}

func lintURL(url string) ([]string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return obs.LintPrometheus(resp.Body), nil
}

// selfTestRegistry builds a registry covering every shape the exporter
// can render, including the ones most likely to regress: escaped label
// values, the overflow fold, and labeled histogram ladders.
func selfTestRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("lint_plain_total", "scalar counter").AddInt(3)
	r.Gauge("lint_plain_gauge", "scalar gauge").Set(-2.5)
	r.Histogram("lint_plain_seconds", "scalar histogram", []float64{0.1, 1}).Observe(0.5)

	cv := r.CounterVec("lint_requests_total", "dimensional counter", "tenant", "code")
	cv.With2("acme", "ok").AddInt(9)
	cv.With2("tricky\"quote\\slash\nnewline", "shed").Inc()
	cv.SetMaxSeries(2)
	cv.With2("flood-1", "ok").Inc() // forces the overflow fold
	r.GaugeVec("lint_inflight", "dimensional gauge", "tenant").With1("acme").Set(2)
	hv := r.HistogramVec("lint_request_seconds", "dimensional histogram",
		obs.DurationBuckets, "tenant")
	hv.With1("acme").Observe(0.02)
	hv.With1("other").Observe(3)
	return r
}
