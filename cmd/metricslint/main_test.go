package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSelfTestPasses is the CI gate: the repo's own exporter must
// produce exposition its own linter accepts, end to end over HTTP.
func TestSelfTestPasses(t *testing.T) {
	problems, err := run("")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("self-test found problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestAddrModeFlagsBadExposition(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Duplicate series + a histogram without +Inf.
		w.Write([]byte("x_total 1\nx_total 1\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"))
	}))
	defer ts.Close()
	problems, err := run(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Errorf("got %d problems %v, want duplicate-series and missing-+Inf", len(problems), problems)
	}
}

func TestAddrModeSurfacesHTTPFailure(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	if _, err := run(ts.URL + "/metrics"); err == nil {
		t.Error("non-200 scrape did not error")
	}
}

func TestMetricsURL(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8080":              "http://localhost:8080/metrics",
		"http://localhost:8080":       "http://localhost:8080/metrics",
		"http://host:1234/metrics":    "http://host:1234/metrics",
		"http://host:1234/other/path": "http://host:1234/other/path",
	} {
		if got := metricsURL(in); got != want {
			t.Errorf("metricsURL(%q) = %q, want %q", in, got, want)
		}
	}
}
