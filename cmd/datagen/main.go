// Command datagen materializes the synthetic benchmark datasets to disk
// in the WRENCH-style JSON layout that dataset.LoadDir reads (and other
// PWS tooling can consume):
//
//	datagen -out ./data                       # all six datasets, full size
//	datagen -out ./data -datasets youtube,sms -scale 0.2 -seed 7
//
// Each dataset lands in <out>/<name>/ with meta.json plus
// train/valid/test.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"datasculpt/internal/dataset"
)

func main() {
	out := flag.String("out", "data", "output directory")
	names := flag.String("datasets", "", "comma-separated subset (default: all six)")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Float64("scale", 1.0, "dataset scale in (0,1]")
	flag.Parse()

	list := dataset.Names()
	if *names != "" {
		list = strings.Split(*names, ",")
	}
	for _, name := range list {
		d, err := dataset.Load(name, *seed, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		dir := filepath.Join(*out, name)
		if err := d.SaveDir(dir); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d/%d/%d examples -> %s\n",
			name, len(d.Train), len(d.Valid), len(d.Test), dir)
	}
}
