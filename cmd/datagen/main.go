// Command datagen materializes the synthetic benchmark datasets to disk
// in the WRENCH-style JSON layout that dataset.LoadDir reads (and other
// PWS tooling can consume), or as streamable JSONL:
//
//	datagen -out ./data                       # all six datasets, full size
//	datagen -out ./data -datasets youtube,sms -scale 0.2 -seed 7
//	datagen -out ./data -datasets youtube -scale 100 -format jsonl
//
// With -format json each dataset lands in <out>/<name>/ with meta.json
// plus train/valid/test.json (map layout, loaded whole). With -format
// jsonl the splits are written as train/valid/test.jsonl — one record per
// line in id order — which dataset.OpenSplitReader streams without
// materializing the corpus; use this for -scale factors above 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"datasculpt/internal/dataset"
)

func main() {
	out := flag.String("out", "data", "output directory")
	names := flag.String("datasets", "", "comma-separated subset (default: all six)")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Float64("scale", 1.0, "dataset scale: (0,1) shrinks, 1 is Table-1 size, >1 grows (e.g. 100 for the out-of-core benchmark)")
	format := flag.String("format", "json", "on-disk layout: json (WRENCH map files) or jsonl (streamable, id-ordered)")
	flag.Parse()

	if *format != "json" && *format != "jsonl" {
		fmt.Fprintf(os.Stderr, "datagen: unknown -format %q (want json or jsonl)\n", *format)
		os.Exit(1)
	}
	list := dataset.Names()
	if *names != "" {
		list = strings.Split(*names, ",")
	}
	for _, name := range list {
		d, err := dataset.Load(name, *seed, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		dir := filepath.Join(*out, name)
		if *format == "jsonl" {
			err = d.SaveDirJSONL(dir)
		} else {
			err = d.SaveDir(dir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d/%d/%d examples -> %s\n",
			name, len(d.Train), len(d.Valid), len(d.Test), dir)
	}
}
