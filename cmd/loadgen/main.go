// Command loadgen drives mixed single/batch labeling traffic across
// tenants of a datasculptd daemon and records latency percentiles and
// throughput, giving serving performance the same committed-benchmark
// trajectory (BENCH_serve.json) the pipeline has in BENCH_pipeline.json.
//
// Two targets:
//
//	loadgen -addr http://localhost:8080 -tenants 4 -duration 10s
//	loadgen -bundle model.json -tenants 4 -duration 10s -out BENCH_serve.json
//
// With -addr it load-tests a running daemon (tenant-0..tenant-N-1 must
// be registered there). With -bundle it boots an in-process loopback
// daemon first — registry, gateway, coalescer, real HTTP — which is
// what `make bench-serve` uses, so the benchmark needs no process
// orchestration. -render pretty-prints a previously written report.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

type loadConfig struct {
	addr        string
	bundlePath  string
	tenants     int
	duration    time.Duration
	concurrency int
	batchFrac   float64
	batchSize   int
	explainFrac float64
	maxBatch    int
	maxWait     time.Duration
	queueDepth  int
	seed        int64
	traceOut    string
	traceSample float64
	traceSlow   time.Duration
}

// quantiles is the latency summary of one request class.
type quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// serverSide is what the daemon's own /metrics said after the run —
// server-side truth to cross-check the client-side numbers against
// (shed counts explain client 429s, batch counts give the effective
// coalescing ratio).
type serverSide struct {
	Shed             float64            `json:"shed"`
	Dropped          float64            `json:"dropped"`
	Errors           float64            `json:"errors"`
	Batches          float64            `json:"batches"`
	RequestsByTenant map[string]float64 `json:"requests_by_tenant,omitempty"`
}

// traceStats summarizes the sampled JSONL trace of an in-process run.
type traceStats struct {
	Spans         int `json:"spans"`
	GatewaySpans  int `json:"gateway_spans"`
	WithRequestID int `json:"with_request_id"`
}

// report is the BENCH_serve.json schema.
type report struct {
	CreatedUnix int64          `json:"created_unix"`
	Config      map[string]any `json:"config"`
	Requests    int            `json:"requests"`
	Texts       int            `json:"texts"`
	Errors      map[string]int `json:"errors,omitempty"`
	Duration    float64        `json:"duration_seconds"`
	RequestsPS  float64        `json:"throughput_rps"`
	TextsPS     float64        `json:"throughput_tps"`
	Latency     quantiles      `json:"latency"`
	Single      quantiles      `json:"single"`
	Batch       quantiles      `json:"batch"`
	Server      *serverSide    `json:"server,omitempty"`
	Trace       *traceStats    `json:"trace,omitempty"`
}

func main() {
	var cfg loadConfig
	var out, render string
	var smoke bool
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running daemon (e.g. http://localhost:8080)")
	flag.StringVar(&cfg.bundlePath, "bundle", "", "bundle file; boots an in-process loopback daemon instead of targeting -addr")
	flag.IntVar(&cfg.tenants, "tenants", 4, "tenant count (tenant-0..tenant-N-1)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to drive traffic")
	flag.IntVar(&cfg.concurrency, "concurrency", 16, "concurrent client workers")
	flag.Float64Var(&cfg.batchFrac, "batch-frac", 0.25, "fraction of requests that are batches")
	flag.IntVar(&cfg.batchSize, "batch-size", 8, "texts per batch request")
	flag.Float64Var(&cfg.explainFrac, "explain-frac", 0.1, "fraction of requests asking for explanations")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "daemon max-batch (in-process mode)")
	flag.DurationVar(&cfg.maxWait, "max-wait", 2*time.Millisecond, "daemon max-wait (in-process mode)")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 0, "daemon queue depth (in-process mode; 0 = default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "traffic rng seed")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "stream sampled JSONL spans here (in-process mode)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0.01, "head-sampling probability for -trace-out")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 250*time.Millisecond, "always keep traces at least this slow (0 disables)")
	flag.StringVar(&out, "out", "", "write the JSON report here (default stdout)")
	flag.StringVar(&render, "render", "", "pretty-print an existing report file and exit")
	flag.BoolVar(&smoke, "smoke", false, "smoke preset: 2s, 4 workers, 2 tenants")
	flag.Parse()

	if render != "" {
		if err := renderReport(os.Stdout, render); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if smoke {
		cfg.duration = 2 * time.Second
		cfg.concurrency = 4
		cfg.tenants = 2
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func runLoad(cfg loadConfig) (*report, error) {
	if (cfg.addr == "") == (cfg.bundlePath == "") {
		return nil, errors.New("provide exactly one of -addr and -bundle")
	}
	if cfg.tenants < 1 || cfg.concurrency < 1 || cfg.batchSize < 1 {
		return nil, errors.New("-tenants, -concurrency and -batch-size must be >= 1")
	}
	base := cfg.addr
	shutdown := func() {}
	if cfg.bundlePath != "" {
		var addr string
		var err error
		shutdown, addr, err = startLoopback(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		base = addr
	}
	tenants := make([]string, cfg.tenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency * 2,
		MaxIdleConnsPerHost: cfg.concurrency * 2,
	}}

	type sample struct {
		ms    float64
		batch bool
	}
	type workerStats struct {
		samples  []sample
		texts    int
		statuses map[int]int
	}
	stats := make([]workerStats, cfg.concurrency)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			st := &stats[w]
			st.statuses = make(map[int]int)
			for time.Now().Before(deadline) {
				tenant := tenants[rng.Intn(len(tenants))]
				batch := rng.Float64() < cfg.batchFrac
				n := 1
				if batch {
					n = cfg.batchSize
				}
				body, err := json.Marshal(requestBody(rng, n, rng.Float64() < cfg.explainFrac))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/tenants/"+tenant+"/label", "application/json", bytes.NewReader(body))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for keep-alive
				resp.Body.Close()
				ms := float64(time.Since(t0).Microseconds()) / 1000
				st.statuses[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					st.samples = append(st.samples, sample{ms: ms, batch: batch})
					st.texts += n
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	// Server-side truth: what the daemon's own counters say happened.
	// Scraped while the daemon is still up, before the loopback shutdown.
	server := scrapeServerMetrics(client, base)

	var all, single, batch []float64
	texts, requests := 0, 0
	errCounts := make(map[string]int)
	for _, st := range stats {
		texts += st.texts
		for code, n := range st.statuses {
			requests += n
			if code != http.StatusOK {
				errCounts[fmt.Sprint(code)] += n
			}
		}
		for _, s := range st.samples {
			all = append(all, s.ms)
			if s.batch {
				batch = append(batch, s.ms)
			} else {
				single = append(single, s.ms)
			}
		}
	}
	if len(all) == 0 {
		return nil, errors.New("no request succeeded")
	}
	rep := &report{
		CreatedUnix: time.Now().Unix(),
		Config: map[string]any{
			"tenants":     cfg.tenants,
			"concurrency": cfg.concurrency,
			"batch_frac":  cfg.batchFrac,
			"batch_size":  cfg.batchSize,
			"max_batch":   cfg.maxBatch,
			"max_wait_ms": float64(cfg.maxWait.Microseconds()) / 1000,
			"in_process":  cfg.bundlePath != "",
			"seed":        cfg.seed,
		},
		Requests:   requests,
		Texts:      texts,
		Duration:   elapsed,
		RequestsPS: float64(requests) / elapsed,
		TextsPS:    float64(texts) / elapsed,
		Latency:    summarize(all),
		Single:     summarize(single),
		Batch:      summarize(batch),
	}
	if len(errCounts) > 0 {
		rep.Errors = errCounts
	}
	rep.Server = server
	if cfg.bundlePath != "" && cfg.traceOut != "" {
		// Close the loopback daemon now (idempotent; the defer re-runs as
		// a no-op) so every sampled span is flushed before counting.
		shutdown()
		rep.Trace = readTraceStats(cfg.traceOut)
	}
	return rep, nil
}

// startLoopback boots a full in-process daemon — registry, gateway,
// real HTTP on 127.0.0.1 — with the bundle registered under every
// tenant (each tenant loads its own copy, as distinct customers would).
// The daemon gets a real metrics registry (so the post-run /metrics
// scrape sees server-side truth) and, with -trace-out, a sampled JSONL
// tracer. shutdown is idempotent.
func startLoopback(cfg loadConfig) (shutdown func(), base string, err error) {
	tracer := obs.Tracer(obs.NopTracer())
	var traceFile *os.File
	if cfg.traceOut != "" {
		traceFile, err = os.Create(cfg.traceOut)
		if err != nil {
			return nil, "", err
		}
		tracer = obs.NewSampledTracer(obs.NewJSONLTracer(traceFile), obs.SamplerOptions{
			Rate:       cfg.traceSample,
			KeepErrors: true,
			SlowLatch:  cfg.traceSlow,
		})
	}
	o := obs.New(tracer, obs.NewRegistry(), nil)
	reg := registry.New(o, registry.Options{
		// Every tenant resident: loadgen measures the serving hot path,
		// not cold remaps. LRU churn is exercised by the registry tests.
		MaxResident: cfg.tenants,
		Serve: serve.Options{
			MaxBatch:   cfg.maxBatch,
			MaxWait:    cfg.maxWait,
			QueueDepth: cfg.queueDepth,
		},
	})
	for i := 0; i < cfg.tenants; i++ {
		if err := reg.Register(fmt.Sprintf("tenant-%d", i), cfg.bundlePath); err != nil {
			reg.Close()
			return nil, "", err
		}
	}
	gw := registry.NewGateway(reg, o, registry.GatewayOptions{DefaultTenant: "tenant-0"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		reg.Close()
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: gw.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck — closed on shutdown
	var once sync.Once
	shutdown = func() {
		once.Do(func() {
			httpSrv.Close()
			reg.Close() // drains coalescers; their batch spans end here
			if traceFile != nil {
				traceFile.Close()
			}
		})
	}
	return shutdown, "http://" + ln.Addr().String(), nil
}

// scrapeServerMetrics folds the daemon's /metrics into the report's
// server section. Best-effort: a daemon without the endpoint (or an old
// one) yields nil, not an error.
func scrapeServerMetrics(client *http.Client, base string) *serverSide {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for keep-alive
		return nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	ss := &serverSide{RequestsByTenant: make(map[string]float64)}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseMetricLine(line)
		if !ok {
			continue
		}
		switch name {
		case "serve_shed_total":
			ss.Shed += value
		case "serve_dropped_total":
			ss.Dropped += value
		case "serve_errors_total":
			ss.Errors += value
		case "serve_batches_total":
			ss.Batches += value
		case "serve_requests_total":
			if t := labels["tenant"]; t != "" {
				ss.RequestsByTenant[t] += value
			}
		}
	}
	return ss
}

// parseMetricLine splits one Prometheus sample into name, labels, value.
// Good enough for the serve_* families loadgen folds in (tenant IDs are
// validated upstream, so label values here never contain escapes).
func parseMetricLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, false
		}
		name, rest = line[:i], line[j+1:]
		labels = make(map[string]string)
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, found := strings.Cut(pair, "=")
			if found {
				labels[k] = strings.Trim(v, `"`)
			}
		}
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		name, rest = line[:i], line[i:]
	} else {
		return "", nil, 0, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// readTraceStats counts the sampled spans the run kept. Called after
// shutdown, so every span (including batch spans ending on server
// goroutines) has been flushed.
func readTraceStats(path string) *traceStats {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	ts := &traceStats{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var span struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if json.Unmarshal(line, &span) != nil {
			continue
		}
		ts.Spans++
		if span.Name == "gateway.request" {
			ts.GatewaySpans++
			if s, ok := span.Attrs["request_id"].(string); ok && s != "" {
				ts.WithRequestID++
			}
		}
	}
	return ts
}

// requestBody builds one deterministic synthetic request: YouTube-
// comment-flavored texts so keyword LFs and the featurizer vocabulary
// both get realistic hit rates.
func requestBody(rng *rand.Rand, n int, explain bool) map[string]any {
	if n == 1 {
		return map[string]any{"text": synthText(rng), "explain": explain}
	}
	texts := make([]string, n)
	for i := range texts {
		texts[i] = synthText(rng)
	}
	return map[string]any{"texts": texts, "explain": explain}
}

var phrases = []string{
	"check out my channel", "subscribe for free stuff", "click this link to win a prize",
	"follow me and i follow back", "make money from home fast", "visit my website now",
	"great song love it", "this brings back memories", "who is watching in 2026",
	"the best video on youtube", "amazing voice so talented", "i listen to this every day",
	"what a classic tune", "my favorite part is the chorus", "saw them live last year",
}

func synthText(rng *rand.Rand) string {
	k := 1 + rng.Intn(3)
	parts := make([]string, k)
	for i := range parts {
		parts[i] = phrases[rng.Intn(len(phrases))]
	}
	return strings.Join(parts, ", ")
}

// summarize sorts a latency sample and reads off the percentiles.
func summarize(ms []float64) quantiles {
	if len(ms) == 0 {
		return quantiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	pick := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return quantiles{
		Count: len(sorted),
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// renderReport pretty-prints a report file — the human-readable check
// `make bench-serve` runs after writing BENCH_serve.json.
func renderReport(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if rep.Requests == 0 || rep.Latency.Count == 0 {
		return fmt.Errorf("%s: empty report", path)
	}
	fmt.Fprintf(w, "serve benchmark (%s)\n", path)
	fmt.Fprintf(w, "  %d requests, %d texts in %.2fs — %.0f req/s, %.0f texts/s\n",
		rep.Requests, rep.Texts, rep.Duration, rep.RequestsPS, rep.TextsPS)
	row := func(name string, q quantiles) {
		if q.Count == 0 {
			return
		}
		fmt.Fprintf(w, "  %-7s n=%-7d p50=%.2fms  p90=%.2fms  p99=%.2fms  max=%.2fms\n",
			name, q.Count, q.P50, q.P90, q.P99, q.Max)
	}
	row("all", rep.Latency)
	row("single", rep.Single)
	row("batch", rep.Batch)
	for code, n := range rep.Errors {
		fmt.Fprintf(w, "  status %s: %d\n", code, n)
	}
	// Server/trace sections are absent in pre-observability reports.
	if s := rep.Server; s != nil {
		fmt.Fprintf(w, "  server: batches=%.0f shed=%.0f dropped=%.0f errors=%.0f\n",
			s.Batches, s.Shed, s.Dropped, s.Errors)
		tenants := make([]string, 0, len(s.RequestsByTenant))
		for t := range s.RequestsByTenant {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			fmt.Fprintf(w, "    %-12s %.0f requests\n", t, s.RequestsByTenant[t])
		}
	}
	if t := rep.Trace; t != nil {
		fmt.Fprintf(w, "  trace: %d spans kept (%d gateway, %d with request id)\n",
			t.Spans, t.GatewaySpans, t.WithRequestID)
	}
	return nil
}
