package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
)

func trainBundle(t *testing.T) string {
	t.Helper()
	d, err := dataset.Load("youtube", 11, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Iterations = 10
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	res, err := core.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadgenEndToEnd drives a short in-process run — loopback daemon,
// mixed single/batch traffic over two tenants — and checks the report
// plus the render path `make bench-serve` depends on.
func TestLoadgenEndToEnd(t *testing.T) {
	cfg := loadConfig{
		bundlePath:  trainBundle(t),
		tenants:     2,
		duration:    500 * time.Millisecond,
		concurrency: 4,
		batchFrac:   0.5,
		batchSize:   4,
		explainFrac: 0.25,
		maxBatch:    16,
		maxWait:     time.Millisecond,
		seed:        1,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Texts < rep.Requests {
		t.Fatalf("requests=%d texts=%d", rep.Requests, rep.Texts)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("unexpected error statuses: %v", rep.Errors)
	}
	if rep.Latency.Count != rep.Single.Count+rep.Batch.Count {
		t.Fatalf("latency counts %d != %d single + %d batch",
			rep.Latency.Count, rep.Single.Count, rep.Batch.Count)
	}
	if rep.Single.Count == 0 || rep.Batch.Count == 0 {
		t.Fatalf("one traffic class never ran: single=%d batch=%d", rep.Single.Count, rep.Batch.Count)
	}
	for _, q := range []quantiles{rep.Latency, rep.Single, rep.Batch} {
		if q.P50 <= 0 || q.P50 > q.P99 || q.P99 > q.Max {
			t.Fatalf("inconsistent quantiles %+v", q)
		}
	}
	if rep.RequestsPS <= 0 || rep.TextsPS < rep.RequestsPS {
		t.Fatalf("throughput rps=%v tps=%v", rep.RequestsPS, rep.TextsPS)
	}

	// The report must render — that is the "BENCH_serve.json renders"
	// gate in make bench-serve.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := renderReport(&out, path); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"requests", "p50", "p99", "single", "batch"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunLoadConfigErrors(t *testing.T) {
	if _, err := runLoad(loadConfig{}); err == nil {
		t.Error("neither -addr nor -bundle accepted")
	}
	if _, err := runLoad(loadConfig{addr: "http://x", bundlePath: "y", tenants: 1, concurrency: 1, batchSize: 1}); err == nil {
		t.Error("both -addr and -bundle accepted")
	}
	if _, err := runLoad(loadConfig{addr: "http://x", tenants: 0, concurrency: 1, batchSize: 1}); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := runLoad(loadConfig{bundlePath: filepath.Join(t.TempDir(), "missing.json"),
		tenants: 1, concurrency: 1, batchSize: 1, duration: time.Millisecond}); err == nil {
		t.Error("missing bundle accepted")
	}
}

func TestRenderReportErrors(t *testing.T) {
	var out bytes.Buffer
	if err := renderReport(&out, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing report accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := renderReport(&out, empty); err == nil {
		t.Error("empty report accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{nope`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := renderReport(&out, bad); err == nil {
		t.Error("unparseable report accepted")
	}
}

func TestSummarize(t *testing.T) {
	if q := summarize(nil); q.Count != 0 {
		t.Errorf("empty summary %+v", q)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1)
	}
	q := summarize(ms)
	if q.Count != 100 || q.P50 != 50 || q.P90 != 90 || q.P99 != 99 || q.Max != 100 {
		t.Errorf("summary of 1..100: %+v", q)
	}
}

func TestSynthTextDeterminism(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		ta, tb := synthText(a), synthText(b)
		if ta != tb {
			t.Fatalf("same seed diverged: %q vs %q", ta, tb)
		}
		if ta == "" {
			t.Fatal("empty synthetic text")
		}
	}
}
