// Command datasculpt runs one DataSculpt pipeline configuration on one
// dataset and prints the resulting LF set, its statistics, and the
// downstream model performance:
//
//	datasculpt -dataset youtube
//	datasculpt -dataset imdb -variant sc -model gpt-4 -iterations 50
//	datasculpt -dataset spouse -variant kate -sampler uncertain -seeds 3
//
// It is the quickest way to explore how the framework behaves under a
// specific configuration; use benchtab to regenerate the paper's full
// tables and figures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/experiment"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/metrics"
	"datasculpt/internal/obs"
)

func main() {
	dsName := flag.String("dataset", "youtube", "dataset name (youtube, sms, imdb, yelp, agnews, spouse)")
	variant := flag.String("variant", "base", "prompting variant: base, cot, sc, kate")
	model := flag.String("model", "gpt-3.5", "LLM profile (gpt-3.5, gpt-4, llama2-7b, llama2-13b, llama2-70b)")
	smp := flag.String("sampler", "random", "query instance sampler: random, uncertain, seu")
	labelModel := flag.String("labelmodel", "metal", "label model: metal, majority, triplet")
	iterations := flag.Int("iterations", 50, "query iterations")
	seeds := flag.Int("seeds", 1, "number of seeds to average")
	scale := flag.Float64("scale", 1.0, "dataset scale: (0,1) shrinks, 1 is Table-1 size, >1 grows every split proportionally")
	annThreshold := flag.Int("ann-threshold", 0, "KATE pool size at which retrieval switches to the LSH index (0 = default 16384, negative = always exact)")
	annMultiplier := flag.Int("ann-multiplier", 0, "LSH shortlist size as a multiple of -shots (0 = default 16)")
	voteSpillMB := flag.Int("vote-spill-mb", 0, "resident-memory budget for the train vote matrix in MB; cold columns spill to a temp file (0 = fully resident)")
	noAccuracy := flag.Bool("no-accuracy-filter", false, "disable the accuracy filter")
	noRedundancy := flag.Bool("no-redundancy-filter", false, "disable the redundancy filter")
	showLFs := flag.Bool("lfs", false, "print the generated LF set with per-LF statistics")
	analyze := flag.Bool("analyze", false, "print the Snorkel-style LF analysis table (coverage/overlap/conflict)")
	saveLFs := flag.String("save-lfs", "", "write the final LF set as JSON to this path")
	saveBundle := flag.String("save-bundle", "", "write the full trained model bundle (LFs, label model, featurizer, end model, provenance) to this path, servable with datasculptd")
	revise := flag.Bool("revise", false, "enable the counterexample-revision pass after the main loop")
	checkpoint := flag.String("checkpoint", "", "append each completed seed to this JSONL file (resumable with -resume)")
	resume := flag.String("resume", "", "skip seeds already recorded in this checkpoint file (may equal -checkpoint; assumes the same flags)")
	maxFailedIters := flag.Int("max-failed-iterations", 0, "iteration failure budget (0 = strict, -1 = unlimited)")
	parallelism := flag.Int("parallelism", 0, "evaluation-engine worker goroutines per run (0 = GOMAXPROCS, 1 = sequential; results identical)")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	traceOut := flag.String("trace-out", "", "stream one JSON span per line (run > iteration > stage) to this file")
	metricsOut := flag.String("metrics-out", "", "write final metrics here on exit (Prometheus text; JSON if the path ends in .json)")
	debugAddr := flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address")
	flag.Parse()

	// Ctrl-C aborts between prompts rather than killing mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	o, cleanup, err := obs.Setup(obs.SetupConfig{
		LogLevel:    *logLevel,
		TracePath:   *traceOut,
		MetricsPath: *metricsOut,
		DebugAddr:   *debugAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasculpt:", err)
		os.Exit(1)
	}
	runErr := run(obs.NewContext(ctx, o), runOptions{
		dataset: *dsName, variant: *variant, model: *model, sampler: *smp,
		labelModel: *labelModel, iterations: *iterations, seeds: *seeds,
		scale: *scale, noAccuracy: *noAccuracy, noRedundancy: *noRedundancy,
		showLFs: *showLFs, analyze: *analyze, saveLFs: *saveLFs, saveBundle: *saveBundle, revise: *revise,
		checkpoint: *checkpoint, resume: *resume, maxFailedIters: *maxFailedIters,
		parallelism:  *parallelism,
		annThreshold: *annThreshold, annMultiplier: *annMultiplier, voteSpillMB: *voteSpillMB,
		obs: o,
	})
	// The cleanup writes -metrics-out and flushes the trace sink, so it
	// must run (and be checked) even when the run itself failed.
	if cerr := cleanup(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "datasculpt:", runErr)
		os.Exit(1)
	}
}

// runOptions bundles the CLI flags.
type runOptions struct {
	dataset, variant, model, sampler, labelModel string
	iterations, seeds                            int
	scale                                        float64
	noAccuracy, noRedundancy                     bool
	showLFs, analyze, revise                     bool
	saveLFs, saveBundle                          string
	checkpoint, resume                           string
	maxFailedIters                               int
	parallelism                                  int
	annThreshold, annMultiplier, voteSpillMB     int
	obs                                          *obs.Obs
}

// cliGridTitle namespaces datasculpt's per-seed checkpoint records so
// they cannot collide with benchtab sweeps sharing a file.
const cliGridTitle = "datasculpt"

func run(ctx context.Context, o runOptions) error {
	dsName, variant, model, smp, labelModel := o.dataset, o.variant, o.model, o.sampler, o.labelModel
	iterations, seeds, scale := o.iterations, o.seeds, o.scale
	noAccuracy, noRedundancy, showLFs := o.noAccuracy, o.noRedundancy, o.showLFs
	if o.obs == nil {
		o.obs = obs.Default()
	}
	// Seeds recorded in a -resume checkpoint are restored instead of
	// re-run; completed seeds are appended to -checkpoint as they finish.
	var restored map[int]*experiment.CellResult
	if o.resume != "" {
		records, err := experiment.LoadCheckpoint(o.resume)
		if err != nil {
			return err
		}
		restored = make(map[int]*experiment.CellResult)
		for i := range records {
			rec := &records[i]
			if rec.Grid == cliGridTitle && rec.Method == variant && rec.Dataset == dsName {
				restored[rec.Seed] = rec.Result
			}
		}
	}
	var ckpt *experiment.CheckpointWriter
	if o.checkpoint != "" {
		w, err := experiment.OpenCheckpoint(o.checkpoint)
		if err != nil {
			return err
		}
		defer w.Close()
		ckpt = w
	}

	var results []*core.Result
	var last *dataset.Dataset
	// finalComputed is the last result actually run this invocation;
	// restored seeds carry statistics only (LF sets are not
	// checkpointed), so -lfs/-analyze/-save-lfs report from it.
	var finalComputed *core.Result
	var finalCfg core.Config
	var cacheStats llm.CacheStats
	for s := 1; s <= seeds; s++ {
		if cr, ok := restored[s]; ok {
			res := cr.CoreResult(variant, dsName)
			results = append(results, res)
			fmt.Printf("seed %d (restored): %s\n", s, res)
			if ckpt != nil && o.checkpoint != o.resume {
				rec := experiment.CellRecord{Grid: cliGridTitle, Method: variant, Dataset: dsName, Seed: s, Result: cr}
				if err := ckpt.Append(rec); err != nil {
					return err
				}
			}
			continue
		}
		d, err := dataset.Load(dsName, int64(7000+13*s), scale)
		if err != nil {
			return err
		}
		last = d
		cfg := core.Config{
			Model:      model,
			Variant:    core.Variant(variant),
			Iterations: iterations,
			Sampler:    smp,
			LabelModel: labelModel,
			Filters: lf.FilterConfig{
				UseAccuracy:   !noAccuracy,
				UseRedundancy: !noRedundancy,
			},
			ReviseRejected:      o.revise,
			MaxFailedIterations: o.maxFailedIters,
			Parallelism:         o.parallelism,
			ANNThreshold:        o.annThreshold,
			ANNMultiplier:       o.annMultiplier,
			VoteSpillMB:         o.voteSpillMB,
			Seed:                int64(100*s + 1),
		}
		// Same endpoint the pipeline would build itself, with a response
		// cache in front so the end-of-run summary can report hit rates
		// (and repeated prompts cost nothing against a real provider).
		sim, err := llm.NewSimulated(model, d, cfg.Seed+101)
		if err != nil {
			return err
		}
		cache := llm.NewCache(sim).Instrument(o.obs.Metrics)
		cfg.ChatModel = cache
		res, err := core.RunContext(ctx, d, cfg)
		if err != nil {
			return err
		}
		cacheStats.Add(cache.Stats())
		results = append(results, res)
		finalComputed = res
		finalCfg = cfg
		fmt.Printf("seed %d: %s\n", s, res)
		if ckpt != nil {
			rec := experiment.CellRecord{Grid: cliGridTitle, Method: variant, Dataset: dsName, Seed: s, Result: experiment.NewCellResult(res)}
			if err := ckpt.Append(rec); err != nil {
				return err
			}
		}
	}

	fmt.Printf("\n%s / datasculpt-%s / %s / %s sampling, %d iterations, %d seed(s)\n",
		dsName, variant, model, smp, iterations, seeds)
	var nlf, acc, cov, total, em, tokens, cost []float64
	accKnown := false
	for _, r := range results {
		nlf = append(nlf, float64(r.NumLFs))
		cov = append(cov, r.LFCoverage)
		total = append(total, r.TotalCoverage)
		em = append(em, r.EndMetric)
		tokens = append(tokens, float64(r.TotalTokens()))
		cost = append(cost, r.CostUSD)
		if r.LFAccuracyKnown {
			acc = append(acc, r.LFAccuracy)
			accKnown = true
		}
	}
	fmt.Printf("  #LFs:        %.1f\n", metrics.Mean(nlf))
	if accKnown {
		fmt.Printf("  LF accuracy: %.3f\n", metrics.Mean(acc))
	} else {
		fmt.Printf("  LF accuracy: - (train labels unavailable)\n")
	}
	fmt.Printf("  LF coverage: %.4f\n", metrics.Mean(cov))
	fmt.Printf("  total cov.:  %.3f\n", metrics.Mean(total))
	fmt.Printf("  end %s: %.3f\n", results[0].MetricName, metrics.Mean(em))
	fmt.Printf("  tokens:      %.0f  (cost $%.4f)\n", metrics.Mean(tokens), metrics.Mean(cost))
	var totalCost float64
	for _, c := range cost {
		totalCost += c
	}
	fmt.Printf("  cache:       %s; total cost $%.4f across %d seed(s)\n",
		cacheStats, totalCost, seeds)

	final := finalComputed
	if (o.saveLFs != "" || o.saveBundle != "" || o.analyze || showLFs) && final == nil {
		fmt.Println("\nnote: every seed was restored from the checkpoint; trained artifacts are not" +
			" checkpointed, so -save-lfs, -save-bundle, -analyze and -lfs have nothing to report")
	}
	if final == nil {
		return nil
	}
	if o.saveLFs != "" {
		data, err := lf.MarshalLFs(final.LFs)
		if err != nil {
			return fmt.Errorf("serializing LF set: %w", err)
		}
		if err := os.WriteFile(o.saveLFs, data, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", o.saveLFs, err)
		}
		fmt.Printf("\nwrote %d LFs to %s\n", len(final.LFs), o.saveLFs)
	}
	if o.saveBundle != "" {
		b, err := bundle.New(last, finalCfg, final)
		if err != nil {
			return err
		}
		if err := bundle.Save(o.saveBundle, b); err != nil {
			return err
		}
		fmt.Printf("\nwrote model bundle (%d LFs, %s %.3f) to %s — serve it with:"+
			"\n  datasculptd -bundle %s\n",
			len(b.LFs), b.Dataset.MetricName, b.Provenance.EndMetric, o.saveBundle, o.saveBundle)
	}
	if o.analyze {
		ix := lf.NewIndex(last.Train)
		vm := lf.BuildVoteMatrix(ix, final.LFs)
		var gold []int
		if last.TrainLabeled {
			gold = dataset.Labels(last.Train)
		}
		sums := lf.Analyze(vm, final.LFs, gold)
		lf.SortByCoverage(sums)
		fmt.Println("\nLF analysis (train split):")
		fmt.Print(lf.FormatSummaries(sums))
	}

	if showLFs {
		fmt.Println("\nGenerated label functions (last computed seed):")
		r := final
		ix := lf.NewIndex(last.Train)
		vm := lf.BuildVoteMatrix(ix, r.LFs)
		gold := dataset.Labels(last.Train)
		type row struct {
			name string
			cov  float64
			acc  float64
			n    int
		}
		rows := make([]row, vm.NumLFs())
		for j := 0; j < vm.NumLFs(); j++ {
			a, n := vm.LFAccuracy(j, gold)
			rows[j] = row{r.LFs[j].Name(), vm.Coverage(j), a, n}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].cov > rows[j].cov })
		for _, rw := range rows {
			if last.TrainLabeled {
				fmt.Printf("  %-40s cov=%.4f acc=%.3f (n=%d)\n", rw.name, rw.cov, rw.acc, rw.n)
			} else {
				fmt.Printf("  %-40s cov=%.4f\n", rw.name, rw.cov)
			}
		}
	}
	return nil
}
