package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"datasculpt/internal/bundle"
	"datasculpt/internal/lf"
)

// TestRunEndToEnd drives the CLI's run path the way the README
// quickstart does: a small training run that saves the LF set and the
// model bundle, prints analysis, checkpoints the seed, and then resumes
// from that checkpoint.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	lfsPath := filepath.Join(dir, "lfs.json")
	bundlePath := filepath.Join(dir, "model.json")
	ckptPath := filepath.Join(dir, "ckpt.jsonl")

	opts := runOptions{
		dataset: "youtube", variant: "base", model: "gpt-3.5", sampler: "random",
		labelModel: "metal", iterations: 10, seeds: 1, scale: 0.3,
		showLFs: true, analyze: true, saveLFs: lfsPath, saveBundle: bundlePath,
		checkpoint: ckptPath, parallelism: 2,
	}
	if err := run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(lfsPath)
	if err != nil {
		t.Fatal(err)
	}
	lfs, err := lf.UnmarshalLFs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfs) == 0 {
		t.Error("saved LF set is empty")
	}

	b, err := bundle.Load(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dataset.Name != "youtube" || len(b.LFs) != len(lfs) || b.EndModel == nil {
		t.Errorf("bundle: dataset %q, %d LFs (saved %d)", b.Dataset.Name, len(b.LFs), len(lfs))
	}
	if b.Provenance.Model != "gpt-3.5" || b.Provenance.CostUSD <= 0 {
		t.Errorf("provenance: %+v", b.Provenance)
	}

	// Resuming from the checkpoint restores the seed instead of re-running;
	// with every seed restored there are no artifacts to save.
	opts.resume = ckptPath
	opts.checkpoint = ""
	opts.saveLFs = ""
	opts.saveBundle = filepath.Join(dir, "unwritten.json")
	if err := run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(opts.saveBundle); !os.IsNotExist(err) {
		t.Error("restored-only run should not write a bundle")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(context.Background(), runOptions{dataset: "no-such-dataset", variant: "base",
		model: "gpt-3.5", sampler: "random", labelModel: "metal", iterations: 2, seeds: 1, scale: 0.3}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(context.Background(), runOptions{dataset: "youtube", variant: "base",
		model: "no-such-model", sampler: "random", labelModel: "metal", iterations: 2, seeds: 1, scale: 0.3}); err == nil {
		t.Error("unknown model accepted")
	}
}
