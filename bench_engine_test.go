// Engine benchmarks: full 50-iteration pipeline runs with the model-driven
// samplers on the largest dataset spec (Agnews, 96k train documents).
// These measure the non-LLM hot path — vote-matrix construction, label
// model fitting, interim end-model training/prediction — that dominates
// iteration cost once the simulated/cached LLM answers instantly.
// `make bench-json` records them in BENCH_pipeline.json.
//
// The Seq variants run with Parallelism: 1 (pure sequential engine, the
// incremental/warm-start wins only); the Par variants add the
// GOMAXPROCS-bounded worker pools. Results are bit-identical across
// variants — only the wall clock differs.
package datasculpt_test

import (
	"sync"
	"testing"

	"datasculpt"
)

var (
	engineOnce sync.Once
	engineDS   *datasculpt.Dataset
	engineErr  error
)

// engineDataset generates the full-scale Agnews corpus once and shares it
// across the engine benchmarks (generation is excluded from timing).
func engineDataset(b *testing.B) *datasculpt.Dataset {
	b.Helper()
	engineOnce.Do(func() {
		engineDS, engineErr = datasculpt.LoadDataset("agnews", 7013, 1.0)
	})
	if engineErr != nil {
		b.Fatal(engineErr)
	}
	return engineDS
}

// engineBench runs one full uncertain/seu pipeline configuration.
// parallelism 1 = sequential engine; 0 = GOMAXPROCS workers.
func engineBench(b *testing.B, sampler string, parallelism int) {
	b.Helper()
	d := engineDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
		cfg.Sampler = sampler
		cfg.Seed = 11
		cfg.Parallelism = parallelism
		if _, err := datasculpt.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineAgnewsUncertainSeq(b *testing.B) { engineBench(b, "uncertain", 1) }

func BenchmarkEngineAgnewsUncertainPar(b *testing.B) { engineBench(b, "uncertain", 0) }

func BenchmarkEngineAgnewsSEUSeq(b *testing.B) { engineBench(b, "seu", 1) }

func BenchmarkEngineAgnewsSEUPar(b *testing.B) { engineBench(b, "seu", 0) }

// BenchmarkEvalSmoke is the `make bench-smoke` target: one scaled-down
// uncertain run, just enough to prove the benchmark harness and the
// evaluation engine still work. CI runs it with -benchtime=1x.
func BenchmarkEvalSmoke(b *testing.B) {
	d, err := datasculpt.LoadDataset("youtube", 11, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
		cfg.Sampler = "uncertain"
		cfg.Iterations = 10
		cfg.Seed = 11
		if _, err := datasculpt.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSEUSmoke is the `make bench-seu-smoke` target: the same
// scaled-down run through the SEU sampler, so CI exercises the memoized
// keyword-utility scoring engine (cache build, parallel candidate
// scoring, cross-call reuse) end to end on every change.
func BenchmarkSEUSmoke(b *testing.B) {
	d, err := datasculpt.LoadDataset("youtube", 11, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
		cfg.Sampler = "seu"
		cfg.Iterations = 10
		cfg.Seed = 11
		if _, err := datasculpt.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
